"""Lockstep simulated cluster: construction and shared bookkeeping.

``SimulatedCluster`` wires together everything a training algorithm needs:

* ``num_workers`` :class:`~repro.cluster.worker.Worker` replicas built from a
  model factory, each with its own optimizer, RNG stream and data partition,
* a :class:`~repro.comm.parameter_server.ParameterServer` initialized from a
  broadcast of worker 0's parameters (so every replica starts identical, as
  in BSP),
* an :class:`~repro.comm.backend.InProcessBackend` for collectives,
* a :class:`~repro.cluster.clock.SimulatedClock` charged through the compute
  and communication cost models so algorithms can report simulated wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.cluster.clock import SimulatedClock
from repro.cluster.compute_model import ComputeCostModel, PAPER_WORKLOADS, WorkloadSpec
from repro.cluster.heterogeneity import HomogeneousSpeed, WorkerSpeedModel
from repro.cluster.worker import Worker
from repro.comm.backend import InProcessBackend
from repro.comm.cost_model import CommunicationCostModel
from repro.comm.parameter_server import ParameterServer
from repro.engine import (
    BatchedReplicaExecutor,
    WorkerMatrix,
    build_fused_update,
    resolve_dtype,
    resolve_transport_dtype,
)
from repro.data.loader import DataLoader
from repro.data.partition import DefaultPartitioner, Partitioner
from repro.metrics.evaluation import EvalResult, evaluate_model
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.utils.rng import spawn_rngs


@dataclass
class ClusterConfig:
    """Configuration of the simulated cluster.

    ``workload`` selects the cost-model spec (defaults to the ResNet101 spec)
    so that simulated times reflect paper-scale model sizes even though the
    replicas themselves are small analogs.

    ``dtype`` selects the engine compute dtype: ``"float64"`` (default, the
    seed's bit-exact regime) or ``"float32"`` (the paper clusters' numerical
    regime; roughly half the memory traffic per step).

    ``transport_dtype`` selects the simulated *wire* format for model
    payloads independently of the compute dtype: ``None`` keeps the
    canonical float32 wire, ``"float16"`` prices half-precision transfers
    (halving every sync round on the simulated clock), ``"float64"`` a
    double-precision wire.  Only byte accounting changes — the replicas
    still train in the compute dtype.

    ``pool_workers`` enables the shared-memory multiprocessing replica pool
    (:mod:`repro.parallel`): the worker matrix is backed by shared memory
    and forward/backward is sharded over ``pool_workers`` OS processes (one
    per replica group), bit-identically in float64 to the single-process
    engine.  ``0`` (the default) keeps everything in-process.
    ``pool_start_method`` picks the multiprocessing start method
    (``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` = platform
    default, preferring fork).

    ``telemetry`` names a JSONL trace-sink path: building the cluster turns
    span tracing on (:mod:`repro.telemetry`) with finished spans appended
    to that file, and ``close()`` flushes it.  ``None`` (the default) keeps
    the allocation-free no-op fast path; the ``REPRO_TRACE_FILE``
    environment variable is the process-wide equivalent.
    """

    num_workers: int = 4
    batch_size: int = 32
    seed: int = 0
    task: str = "classification"
    workload: str = "resnet101"
    topology: str = "ps"
    dtype: str = "float64"
    transport_dtype: Optional[str] = None
    pool_workers: int = 0
    pool_start_method: Optional[str] = None
    eval_batch_size: int = 512
    eval_max_batches: Optional[int] = 8
    top_k: Optional[int] = None
    speed_model: WorkerSpeedModel = field(default_factory=HomogeneousSpeed)
    telemetry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.telemetry is not None and not isinstance(self.telemetry, str):
            raise ValueError(
                f"telemetry must be a trace-file path or None, got {self.telemetry!r}"
            )
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.task not in ("classification", "language_modeling"):
            raise ValueError(f"unknown task {self.task!r}")
        if self.workload not in PAPER_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; available: {sorted(PAPER_WORKLOADS)}"
            )
        # Raises on unsupported dtypes (anything outside float32/float64).
        resolve_dtype(self.dtype)
        # Raises on unsupported transport dtypes (None -> float32 wire).
        resolve_transport_dtype(self.transport_dtype)
        if self.pool_workers < 0:
            raise ValueError(f"pool_workers must be >= 0, got {self.pool_workers}")
        if self.pool_workers or self.pool_start_method is not None:
            # Raises on unknown / unavailable start methods.
            from repro.parallel.pool import resolve_start_method

            resolve_start_method(self.pool_start_method)


class SimulatedCluster:
    """N workers + parameter server + cost models, trained in lockstep."""

    def __init__(
        self,
        model_factory: Callable[[np.random.Generator], Module],
        optimizer_factory: Callable[[Module], Optimizer],
        train_dataset,
        test_dataset,
        config: ClusterConfig,
        partitioner: Optional[Partitioner] = None,
        worker_batch_size: Optional[int] = None,
    ) -> None:
        self.config = config
        if config.telemetry is not None:
            telemetry.configure(tracing=True, trace_file=config.telemetry)
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.partitioner = partitioner or DefaultPartitioner(seed=config.seed)
        n = config.num_workers
        batch_size = worker_batch_size or config.batch_size

        rngs = spawn_rngs(config.seed, n + 1)
        # Engine compute dtype: every buffer built below (worker matrix rows,
        # optimizer state, the parameter-server state) uses this dtype.
        self.dtype = resolve_dtype(config.dtype)
        # Build worker 0's model first and copy its weights to every other
        # replica, mirroring the initial pullFromPS of Alg. 1 (line 3).
        reference_model = model_factory(rngs[0])
        reference_model.flatten_parameters(dtype=self.dtype)
        initial_state = reference_model.state_dict()

        partition = self.partitioner.partition(len(train_dataset), n)
        self.partition_result = partition

        # All worker replicas live as rows of one (N, D) matrix: parameters
        # and gradients are zero-copy views into it, so aggregation,
        # broadcast and Δ(gᵢ) tracking are single vectorized operations.
        spec = reference_model.flat_spec
        self._shared_storage = None
        self.matrix = self._build_matrix(spec)

        self.workers: List[Worker] = []
        for worker_id in range(n):
            model = model_factory(rngs[worker_id])
            self.matrix.adopt(worker_id, model)
            model.load_param_vector(reference_model.param_vector)
            optimizer = optimizer_factory(model)
            loader = DataLoader(
                train_dataset,
                indices=partition.worker_indices[worker_id],
                batch_size=batch_size,
                shuffle_each_epoch=self.partitioner.shuffle_each_epoch,
                seed=config.seed * 1000 + worker_id,
            )
            self.workers.append(
                Worker(worker_id, model, optimizer, loader, task=config.task)
            )

        self.ps = ParameterServer(
            initial_state,
            num_workers=n,
            dtype=self.dtype,
            transport_dtype=config.transport_dtype,
        )
        # Shared per-step dropout stream: batches TransformerLM with p > 0
        # (and keeps replica-pool children mask-identical without IPC).
        # Private per-layer dropout RNGs stay the default for every other
        # model family, preserving their seed trajectories.
        from repro.engine import (
            SharedDropoutStream,
            attach_shared_dropout,
            module_has_active_dropout,
        )
        from repro.nn.models.transformer import TransformerLM

        self.dropout_stream = None
        self._dropout_tick = 0
        model0 = self.workers[0].model
        if type(model0) is TransformerLM and module_has_active_dropout(model0):
            self.dropout_stream = SharedDropoutStream(config.seed, n)
            # Arm the stream at tick 0 so direct training-mode forwards
            # (e.g. Worker.train_step outside a trainer) work immediately;
            # every cluster gradient computation advances to a fresh tick.
            self.dropout_stream.set_step(self._dropout_tick)
            for worker_id, worker in enumerate(self.workers):
                attach_shared_dropout(worker.model, self.dropout_stream, worker_slot=worker_id)
        # Fused all-replica forward/backward when the model family supports
        # it (None otherwise; compute_gradients_all falls back to the loop).
        # Both tasks share the cross-entropy arithmetic, so classification
        # (MLP/conv) and language modeling (transformer) batch the same way.
        self.replica_exec = BatchedReplicaExecutor.build(
            self.matrix, self.workers[0].model
        )
        # Fused all-worker optimizer stepping when every worker runs the
        # same SGD or Adam configuration (None otherwise; apply_local_updates
        # then loops over the per-worker optimizers).
        self.fused_update = build_fused_update(self.workers, self.matrix)
        # Multiprocessing replica pool: one process per replica group shards
        # forward/backward over the shared matrix; aggregation, tracking and
        # optimizer stepping stay on this (parent) process.
        self.pool = None
        if config.pool_workers:
            from repro.parallel.pool import ReplicaPool

            self.pool = ReplicaPool(
                self._shared_storage,
                [worker.model for worker in self.workers],
                num_groups=config.pool_workers,
                start_method=config.pool_start_method,
                use_executor=self.replica_exec is not None,
                dropout_seed=(
                    self.dropout_stream.seed if self.dropout_stream is not None else None
                ),
            )
        self.backend = InProcessBackend(
            world_size=n, transport_dtype=config.transport_dtype
        )
        self.clock = SimulatedClock(num_workers=n)
        self.comm_model = CommunicationCostModel(
            topology=config.topology, transport_dtype=config.transport_dtype
        )
        self.workload_spec: WorkloadSpec = PAPER_WORKLOADS[config.workload]
        self.compute_model = ComputeCostModel(self.workload_spec)
        self.speed_model = config.speed_model
        self._eval_rng = rngs[n]
        self.global_step = 0
        # Elasticity state (repro.faults): crashed workers leave the active
        # mask, dropping their rows from the fused engine and every
        # aggregation; straggler bursts scale per-worker compute speed.
        # All-True / all-ones is the fast path — every masked branch below
        # is a strict no-op then.
        self.active_mask = np.ones(n, dtype=bool)
        self.fault_speed_scale = np.ones(n, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # matrix construction (extension point)
    # ------------------------------------------------------------------ #
    def _build_matrix(self, spec) -> WorkerMatrix:
        """Build the cluster's ``(N, D)`` worker matrix for ``spec``.

        The flat layout is only known once the reference model has been
        built, so this runs mid-``__init__`` — it is the extension point for
        alternative storage owners: with ``pool_workers`` the rows live in
        parent-owned shared memory (replica-pool children map the same
        segments zero-copy), and :class:`StackedSliceCluster` overrides this
        to adopt donated row slices of a sweep-wide stacked matrix.
        """
        n = self.config.num_workers
        if self.config.pool_workers:
            from repro.parallel.shm import SharedMatrixStorage

            self._shared_storage = SharedMatrixStorage(n, spec.total_size, spec.dtype)
            return WorkerMatrix(
                n, spec, params=self._shared_storage.params, grads=self._shared_storage.grads
            )
        return WorkerMatrix(n, spec)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return self.config.num_workers

    @property
    def batch_size(self) -> int:
        return self.workers[0].loader.batch_size

    @property
    def num_active(self) -> int:
        """Number of workers currently in the active set."""
        return int(self.active_mask.sum())

    @property
    def active_indices(self) -> np.ndarray:
        """Worker ids currently in the active set, ascending."""
        return np.flatnonzero(self.active_mask)

    @property
    def primary_worker(self) -> Worker:
        """The first active worker (worker 0 unless it crashed).

        Algorithms that track a reference replica (BSP's PS mirror, SelSync's
        GA checkpoint) use this instead of ``workers[0]`` so a crashed
        worker 0 never becomes the reference.
        """
        if self.active_mask[0]:
            return self.workers[0]
        return self.workers[int(self.active_indices[0])]

    @property
    def active_params(self) -> np.ndarray:
        """Parameter rows of the active workers.

        The live full matrix when every worker is active (the common case —
        zero-copy), a gathered ``(num_active, D)`` copy under an elastic mask.
        """
        if self.active_mask.all():
            return self.matrix.params
        return self.matrix.params[self.active_mask]

    @property
    def active_grads(self) -> np.ndarray:
        """Gradient rows of the active workers (see :attr:`active_params`)."""
        if self.active_mask.all():
            return self.matrix.grads
        return self.matrix.grads[self.active_mask]

    # ------------------------------------------------------------------ #
    # elasticity (repro.faults)
    # ------------------------------------------------------------------ #
    def deactivate_worker(self, worker_id: int) -> None:
        """Drop a worker from the active set (a crash).

        Its parameter and gradient rows freeze in place: the fused engine,
        optimizer stepping, aggregation and broadcast all skip the row until
        :meth:`reactivate_worker`.
        """
        self._check_worker_id(worker_id)
        if self.pool is not None:
            raise RuntimeError(
                "the replica pool does not support elastic worker masks; "
                "run fault scenarios in-process (pool_workers=0)"
            )
        if not self.active_mask[worker_id]:
            raise ValueError(f"worker {worker_id} is already inactive")
        if self.num_active == 1:
            raise ValueError("cannot deactivate the last active worker")
        self.active_mask[worker_id] = False

    def reactivate_worker(self, worker_id: int) -> None:
        """Return a crashed worker to the active set (a rejoin)."""
        self._check_worker_id(worker_id)
        if self.active_mask[worker_id]:
            raise ValueError(f"worker {worker_id} is already active")
        self.active_mask[worker_id] = True

    def _check_worker_id(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(
                f"worker_id must be in [0, {self.num_workers}), got {worker_id}"
            )

    def next_batches(self) -> List:
        """One local mini-batch per worker; ``None`` at crashed slots.

        Crashed workers' loaders do not advance, so their data stream
        resumes exactly where it stopped when they rejoin.
        """
        return [
            worker.next_batch() if self.active_mask[worker.worker_id] else None
            for worker in self.workers
        ]

    # ------------------------------------------------------------------ #
    # checkpoint / restore (repro.faults)
    # ------------------------------------------------------------------ #
    def checkpoint(self):
        """Snapshot the full cluster state as contiguous copies.

        Returns a :class:`~repro.faults.checkpoint.ClusterCheckpoint`; see
        :meth:`restore`.
        """
        from repro.faults.checkpoint import snapshot_cluster

        return snapshot_cluster(self)

    def restore(self, ckpt) -> None:
        """Write a checkpoint back in place — bit-identical continuation."""
        from repro.faults.checkpoint import restore_cluster

        restore_cluster(self, ckpt)

    def steps_per_epoch(self) -> int:
        """Global steps per pass over the full training set (BSP semantics)."""
        return max(len(self.train_dataset) // (self.batch_size * self.num_workers), 1)

    # ------------------------------------------------------------------ #
    # gradient computation
    # ------------------------------------------------------------------ #
    def _next_dropout_tick(self) -> int:
        """Advance the shared dropout stream by one gradient computation."""
        self._dropout_tick += 1
        if self.dropout_stream is not None:
            self.dropout_stream.set_step(self._dropout_tick)
        return self._dropout_tick

    def compute_gradients_all(self, batches) -> List[float]:
        """Forward + backward for every worker; returns per-worker losses.

        With a replica pool the pass is sharded across the pool's processes
        (gradients land in the shared matrix rows).  In-process, it uses the
        engine's fused batched-replica executor when available (one set of
        batched matmuls for the whole cluster, gradients written straight
        into the matrix rows), otherwise the per-worker loop.  ``batches``
        holds one ``(inputs, targets)`` pair per worker.
        """
        tick = self._next_dropout_tick()
        if not self.active_mask.all():
            return self._compute_gradients_masked(batches)
        with telemetry.span("cluster.gradients"):
            if self.pool is not None:
                losses, norms = self.pool.compute_all(batches, tick=tick)
                for worker, loss, norm in zip(self.workers, losses, norms):
                    worker.last_loss = float(loss)
                    worker.last_grad_norm = float(norm)
                return [float(l) for l in losses]
            if self.replica_exec is not None:
                losses = self.replica_exec.step(batches)
                if losses is not None:
                    norms = self.replica_exec.grad_norms()
                    for worker, loss, norm in zip(self.workers, losses, norms):
                        worker.last_loss = float(loss)
                        worker.last_grad_norm = float(norm)
                    return [float(l) for l in losses]
            return [
                worker.compute_gradients_flat(batch)[0]
                for worker, batch in zip(self.workers, batches)
            ]

    def _compute_gradients_masked(self, batches) -> List[float]:
        """Gradients for the active workers only; returns their losses.

        ``batches`` is full-length with ``None`` at crashed slots (see
        :meth:`next_batches`).  The fused executor still runs all N rows —
        crashed slots compute against a placeholder batch so the batched
        matmul shapes stay fixed — but their gradient rows are zeroed
        afterwards and their losses dropped, so nothing from a crashed row
        ever reaches an aggregation.
        """
        if self.pool is not None:
            raise RuntimeError(
                "the replica pool does not support elastic worker masks; "
                "run fault scenarios in-process (pool_workers=0)"
            )
        mask = self.active_mask
        active = np.flatnonzero(mask)
        with telemetry.span("cluster.gradients"):
            if self.replica_exec is not None:
                placeholder = batches[int(active[0])]
                filled = [b if b is not None else placeholder for b in batches]
                losses = self.replica_exec.step(filled)
                if losses is not None:
                    norms = self.replica_exec.grad_norms()
                    self.matrix.grads[~mask] = 0.0
                    out: List[float] = []
                    for worker_id in active:
                        worker = self.workers[worker_id]
                        worker.last_loss = float(losses[worker_id])
                        worker.last_grad_norm = float(norms[worker_id])
                        out.append(float(losses[worker_id]))
                    return out
            return [
                self.workers[worker_id].compute_gradients_flat(batches[worker_id])[0]
                for worker_id in active
            ]

    def compute_gradients_worker(self, worker: Worker, batch=None) -> float:
        """Forward + backward for a single worker (SSP's round-robin path).

        The batch is always sampled on the parent (loader state lives here),
        then computed remotely when a replica pool is active — the worker's
        shared parameter row is already current, and its gradient row
        receives the result.
        """
        if batch is None:
            batch = worker.next_batch()
        tick = self._next_dropout_tick()
        if self.pool is not None:
            loss, norm = self.pool.compute_one(worker.worker_id, batch, tick=tick)
            worker.last_loss = loss
            worker.last_grad_norm = norm
            return loss
        return worker.compute_gradients_flat(batch)[0]

    def apply_local_updates(
        self, lr: Optional[float] = None, grads: Optional[np.ndarray] = None
    ) -> None:
        """One optimizer step on every worker (fused matrix form when possible).

        ``grads=None`` applies each worker's own gradients; a flat ``(D,)``
        vector applies the same aggregated gradient to every replica.
        """
        with telemetry.span("cluster.update"):
            if (
                self.active_mask.all()
                and self.fused_update is not None
                and self.fused_update.apply(lr=lr, grads=grads)
            ):
                return
            # Per-worker optimizers alias the fused state rows, so the loop
            # (also the elastic-mask path: crashed rows stay frozen) keeps
            # one consistent state with the fused step.
            for worker_id in np.flatnonzero(self.active_mask):
                self.workers[worker_id].apply_update(grads=grads, lr=lr)

    # ------------------------------------------------------------------ #
    # simulated-time charging
    # ------------------------------------------------------------------ #
    def charge_compute_step(self, batch_size: Optional[int] = None) -> np.ndarray:
        """Charge one parallel compute phase; returns per-worker durations."""
        b = batch_size or self.batch_size
        # The speed model is always consulted (stateful models advance their
        # RNG once per step); fault bursts then compound multiplicatively.
        speeds = self.speed_model.speed_factors(self.num_workers, self.global_step)
        if not np.all(self.fault_speed_scale == 1.0):
            speeds = speeds * self.fault_speed_scale
        durations = self.compute_model.step_seconds_batch(b, speeds)
        if not self.active_mask.all():
            durations = np.where(self.active_mask, durations, 0.0)
        self.clock.advance_all(durations, bucket="compute")
        return durations

    def charge_sync(self) -> float:
        """Charge one full-model aggregation round (barrier + transfer)."""
        seconds = self.comm_model.sync_seconds(
            self.workload_spec.model_bytes, self.num_active
        )
        self.clock.barrier_and_add(seconds, bucket="communication")
        if telemetry.metrics_enabled():
            # Modeled aggregate wire volume: every active worker pushes its
            # update and pulls the averaged state, in the wire format.
            telemetry.count(
                "repro_comm_wire_bytes_total",
                2.0
                * self.workload_spec.model_bytes
                * self.comm_model.wire_scale
                * self.num_active,
                kind="sync",
            )
        return seconds

    def charge_flags_allgather(self) -> float:
        """Charge the SelSync synchronization-status all-gather."""
        seconds = self.comm_model.flags_seconds(self.num_active)
        self.clock.barrier_and_add(seconds, bucket="communication")
        if telemetry.metrics_enabled():
            n = self.num_active
            telemetry.count(
                "repro_comm_wire_bytes_total",
                max((n - 1) / 8.0, 1.0) * n,
                kind="flags",
            )
        return seconds

    def charge_p2p(self, num_bytes: float) -> float:
        """Charge a point-to-point transfer (data injection, SSP pushes)."""
        seconds = self.comm_model.p2p_seconds(num_bytes)
        self.clock.barrier_and_add(seconds, bucket="communication")
        if telemetry.metrics_enabled():
            telemetry.count("repro_comm_wire_bytes_total", float(num_bytes), kind="p2p")
        return seconds

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate_state(self, state) -> EvalResult:
        """Evaluate a (global) parameter state on the held-out test set.

        ``state`` may be a named dict or an already-flat parameter vector.
        """
        model = self.workers[0].model
        backup = model.param_vector.copy()
        if isinstance(state, np.ndarray):
            model.load_param_vector(state)
        else:
            model.load_state_dict(state)
        try:
            result = evaluate_model(
                model,
                self.test_dataset,
                task=self.config.task,
                batch_size=self.config.eval_batch_size,
                max_batches=self.config.eval_max_batches,
                top_k=self.config.top_k,
            )
        finally:
            model.load_param_vector(backup)
        return result

    def evaluate_worker_average(self) -> EvalResult:
        """Evaluate the average of all current worker replicas.

        This is the model a semi-synchronous method would obtain if it
        synchronized right now; it is the checkpoint metric used in the
        convergence curves (Figs. 9, 10, 12).
        """
        return self.evaluate_state(self.average_worker_vector())

    def evaluate_global(self) -> EvalResult:
        """Evaluate the parameter-server state."""
        return self.evaluate_state(self.ps.pull())

    # ------------------------------------------------------------------ #
    # misc helpers
    # ------------------------------------------------------------------ #
    def broadcast_state(self, state) -> None:
        """Load a global state into every replica by one matrix row assignment.

        ``state`` may be a named dict or an already-flat parameter vector.
        """
        if not isinstance(state, np.ndarray):
            state = self.matrix.spec.flatten_tree(state)
        if self.active_mask.all():
            self.matrix.broadcast(state)
            return
        # Elastic mask: only active rows receive the global state; crashed
        # rows stay frozen until their rejoin restores them.
        vector = np.asarray(state, dtype=self.matrix.dtype).ravel()
        if vector.size != self.matrix.spec.total_size:
            raise ValueError(
                f"broadcast vector has length {vector.size}, "
                f"expected {self.matrix.spec.total_size}"
            )
        self.matrix.params[self.active_mask] = vector

    def average_worker_states(self) -> Dict[str, np.ndarray]:
        """Named replica average (one fused mean over the worker matrix).

        Under an elastic mask the mean runs over the active rows only.
        """
        if self.active_mask.all():
            return self.matrix.mean_state_dict()
        mean = self.matrix.params[self.active_mask].mean(axis=0)
        return self.matrix.spec.unflatten(mean)

    def average_worker_vector(self) -> np.ndarray:
        """Flat replica average — the engine-level form of PA aggregation."""
        if self.active_mask.all():
            return self.matrix.mean_params()
        return self.matrix.params[self.active_mask].mean(axis=0)

    def replica_divergence(self) -> float:
        """Mean L2 distance of worker replicas from their average (drift diagnostic)."""
        return self.matrix.divergence()

    # ------------------------------------------------------------------ #
    # batched per-layer statistics (repro.stats over matrix slices)
    # ------------------------------------------------------------------ #
    def layer_gradient_norms(self) -> Dict[str, np.ndarray]:
        """Per-layer gradient L2 norms for every worker: ``{name: (N,)}``.

        Computed from ``ParamSpec`` column slices of the gradient matrix in
        one fused reduction per layer — no per-worker unflatten.
        """
        from repro.stats.layer_stats import matrix_layer_norms

        return matrix_layer_norms(self.matrix.grads, self.matrix.spec)

    def layer_parameter_norms(self) -> Dict[str, np.ndarray]:
        """Per-layer parameter L2 norms for every worker: ``{name: (N,)}``."""
        from repro.stats.layer_stats import matrix_layer_norms

        return matrix_layer_norms(self.matrix.params, self.matrix.spec)

    def layer_gradient_sample(self, name: str, max_samples: Optional[int] = None):
        """Pooled gradient entries of one layer across all workers (KDE input)."""
        from repro.stats.layer_stats import layer_sample

        return layer_sample(self.matrix.grads, self.matrix.spec, name, max_samples=max_samples)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the replica pool and release shared-memory segments.

        Idempotent and safe to skip: the pool and the storage both carry GC
        finalizers, so abandoned clusters clean up after themselves — but
        explicit closing releases OS resources deterministically (the
        harness closes every cluster it builds).
        """
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self.config.telemetry is not None:
            telemetry.flush()
        if self._shared_storage is not None:
            # Unlinks the segment names; the parent's own views (the matrix,
            # every model and optimizer buffer) stay valid until GC.
            self._shared_storage.close()
            self._shared_storage = None

    def __enter__(self) -> "SimulatedCluster":
        """Context-manager entry; pairs pool/shm ownership with a scope."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: always :meth:`close` (idempotent)."""
        self.close()


class StackedSliceCluster(SimulatedCluster):
    """One grid point of a stacked sweep, living as an N-row slice of a
    sweep-wide ``(S·N, D)`` matrix.

    Built by :func:`repro.harness.sweep.run_sweep_stacked`: each of the S
    grid points gets a full :class:`SimulatedCluster` — its own workers,
    loaders, parameter server, backend and clock — but parameter/gradient
    storage is donated by a
    :class:`~repro.engine.sweep_exec.StackedSweepMatrix`, and gradient
    computation defers to the coordinator's fused pass over all S·N rows.
    Everything a sync policy touches (aggregation, Δ(gᵢ) statistics, fused
    optimizer state, PS pushes) operates on this slice's rows only, so the
    slice evolves exactly as its sequential run would.
    """

    def __init__(self, *args, stacked_matrix=None, slice_index: int = 0, **kwargs) -> None:
        if stacked_matrix is None:
            raise ValueError("StackedSliceCluster requires a stacked_matrix")
        # Set before super().__init__: _build_matrix runs mid-construction.
        self._stacked_matrix = stacked_matrix
        self._slice_index = int(slice_index)
        super().__init__(*args, **kwargs)

    def _build_matrix(self, spec) -> WorkerMatrix:
        if self.config.pool_workers:
            raise ValueError(
                "stacked sweep execution is incompatible with the replica pool "
                "(pool_workers must be 0); sharding the stacked matrix across "
                "pool processes is a planned follow-on"
            )
        params, grads = self._stacked_matrix.slice_storage(self._slice_index, spec)
        return WorkerMatrix(self.config.num_workers, spec, params=params, grads=grads)

    def compute_gradients_all(self, batches) -> List[float]:
        """Per-worker losses for this slice, served by the fused stacked pass.

        The first slice to request a given global step triggers one fused
        forward/backward over all S·N rows; later slices read their cached
        row ranges.  The shared dropout stream still advances one tick per
        gradient computation, keeping tick parity with the sequential path.
        """
        self._next_dropout_tick()
        if not self.active_mask.all():
            # Elastic fault mask: crashed rows are zeroed by the stacked
            # matrix and only active losses are returned, matching the
            # in-process masked path.
            self._stacked_matrix.set_slice_mask(self._slice_index, self.active_mask)
            losses, norms = self._stacked_matrix.gradients_for_slice(
                self._slice_index, batches
            )
            out: List[float] = []
            for worker_id in np.flatnonzero(self.active_mask):
                worker = self.workers[worker_id]
                worker.last_loss = float(losses[worker_id])
                worker.last_grad_norm = float(norms[worker_id])
                out.append(float(losses[worker_id]))
            return out
        self._stacked_matrix.set_slice_mask(self._slice_index, None)
        losses, norms = self._stacked_matrix.gradients_for_slice(
            self._slice_index, batches
        )
        for worker, loss, norm in zip(self.workers, losses, norms):
            worker.last_loss = float(loss)
            worker.last_grad_norm = float(norm)
        return [float(l) for l in losses]
