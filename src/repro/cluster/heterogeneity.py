"""Worker speed heterogeneity and straggler models.

BSP is limited by its slowest worker (§II-A); SSP exists to tolerate exactly
this.  The straggler model draws a per-step speed factor for every worker so
the simulator can reproduce that sensitivity in the straggler ablation bench.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import new_rng


class WorkerSpeedModel:
    """Base interface: per-step speed factors for every worker (1.0 = nominal)."""

    def speed_factors(self, num_workers: int, step: int) -> np.ndarray:
        raise NotImplementedError


class HomogeneousSpeed(WorkerSpeedModel):
    """All workers identical, optionally all uniformly faster/slower."""

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = float(factor)

    def speed_factors(self, num_workers: int, step: int) -> np.ndarray:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        return np.full(num_workers, self.factor)


class StragglerModel(WorkerSpeedModel):
    """Random transient stragglers plus optional static heterogeneity.

    Parameters
    ----------
    straggler_prob:
        Per-worker, per-step probability of being a straggler.
    slowdown:
        Factor by which a straggler's compute slows down (speed divides by it).
    static_factors:
        Optional fixed per-worker speeds (e.g. a mixed-GPU cluster).
    """

    def __init__(
        self,
        straggler_prob: float = 0.1,
        slowdown: float = 3.0,
        static_factors: Optional[Sequence[float]] = None,
        seed: Optional[int] = 0,
    ) -> None:
        if not 0.0 <= straggler_prob <= 1.0:
            raise ValueError(f"straggler_prob must be in [0, 1], got {straggler_prob}")
        if slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        self.straggler_prob = float(straggler_prob)
        self.slowdown = float(slowdown)
        self.static_factors = (
            np.asarray(static_factors, dtype=np.float64) if static_factors is not None else None
        )
        if self.static_factors is not None and np.any(self.static_factors <= 0):
            raise ValueError("static speed factors must be positive")
        self._rng = new_rng(seed)

    def speed_factors(self, num_workers: int, step: int) -> np.ndarray:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if self.static_factors is not None:
            if self.static_factors.size != num_workers:
                raise ValueError(
                    f"static_factors has {self.static_factors.size} entries, "
                    f"expected {num_workers}"
                )
            base = self.static_factors.copy()
        else:
            base = np.ones(num_workers)
        stragglers = self._rng.random(num_workers) < self.straggler_prob
        base[stragglers] /= self.slowdown
        return base
