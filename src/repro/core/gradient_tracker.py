"""Relative gradient-change tracking, the Δ(gᵢ) of Eqn. (2).

At every iteration the tracker ingests the worker's freshly computed
gradients, reduces them to a scalar statistic (gradient variance by default,
the quantity the paper verifies against the Hessian's top eigenvalue),
smooths the statistic with a windowed EWMA, and reports

    Δ(gᵢ) = | s_i − s_{i−1} | / s_{i−1}

where ``s`` is the smoothed statistic.  The overhead of this computation is
what Fig. 8a measures; :class:`TrackerOverheadProbe` reproduces that
measurement.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.stats.ewma import EWMA
from repro.stats.variance import gradient_norm, gradient_second_moment, gradient_variance


_STATISTICS = ("variance", "second_moment", "norm")


class GradientChangeTracker:
    """Tracks Δ(gᵢ) across iterations for one worker.

    Parameters
    ----------
    window:
        EWMA window size (the paper uses 25 and shows 25–200 in Fig. 8a).
    alpha:
        EWMA smoothing factor; the paper sets it to ``num_workers / 100``.
    statistic:
        Scalar gradient statistic to track: ``"variance"`` (default),
        ``"second_moment"`` (E[||∇F||²] as written in Eqn. 2) or ``"norm"``.
    eps:
        Numerical floor for the denominator of the relative change.
    """

    def __init__(
        self,
        window: int = 25,
        alpha: float = 0.16,
        statistic: str = "variance",
        eps: float = 1e-12,
    ) -> None:
        if statistic not in _STATISTICS:
            raise ValueError(
                f"unknown statistic {statistic!r}; choose from {_STATISTICS}"
            )
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.statistic = statistic
        self.eps = float(eps)
        self._ewma = EWMA(alpha=alpha, window=window)
        self._previous_smoothed: Optional[float] = None
        self.history: List[float] = []
        self.raw_history: List[float] = []
        self.last_compute_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def window(self) -> int:
        """EWMA window size (the paper's default is 25)."""
        return self._ewma.window

    @property
    def alpha(self) -> float:
        """EWMA smoothing factor (paper rule: ``num_workers / 100``)."""
        return self._ewma.alpha

    def _reduce(self, grads) -> float:
        if self.statistic == "variance":
            return gradient_variance(grads)
        if self.statistic == "second_moment":
            return gradient_second_moment(grads)
        return gradient_norm(grads)

    def update(self, grads) -> float:
        """Ingest this iteration's gradients and return Δ(gᵢ).

        ``grads`` may be a named mapping or an already-flat gradient vector.
        The first iteration has no predecessor, so Δ is defined as 0 there
        (the SelSync trainer forces a synchronization on the first step
        anyway to establish a common starting state).
        """
        start = time.perf_counter()
        raw = self._reduce(grads)
        delta = self._ingest(raw)
        self.last_compute_seconds = time.perf_counter() - start
        return delta

    def update_scalar(self, raw: float) -> float:
        """Ingest an externally reduced statistic and return Δ(gᵢ).

        Used by the vectorized SelSync path: the per-worker reductions are
        computed in one pass over the cluster's ``(N, D)`` gradient matrix
        (:func:`repro.stats.variance.batch_gradient_statistic`), then each
        tracker only performs the cheap scalar EWMA/Δ bookkeeping.
        """
        start = time.perf_counter()
        delta = self._ingest(float(raw))
        self.last_compute_seconds = time.perf_counter() - start
        return delta

    def _ingest(self, raw: float) -> float:
        smoothed = self._ewma.update(raw)
        if self._previous_smoothed is None:
            delta = 0.0
        else:
            denom = max(abs(self._previous_smoothed), self.eps)
            delta = abs(smoothed - self._previous_smoothed) / denom
        self._previous_smoothed = smoothed
        self.raw_history.append(raw)
        self.history.append(delta)
        return delta

    @property
    def last_delta(self) -> float:
        """Most recent Δ(gᵢ); raises if no gradient has been seen yet."""
        if not self.history:
            raise RuntimeError("tracker has not seen any gradients yet")
        return self.history[-1]

    @property
    def max_delta(self) -> float:
        """The extremum M = max(Δ(gᵢ)) observed so far (§III-B)."""
        if not self.history:
            return 0.0
        return float(max(self.history))

    def reset(self) -> None:
        """Clear all EWMA state, as if freshly constructed."""
        self._ewma.reset()
        self._previous_smoothed = None
        self.history.clear()
        self.raw_history.clear()


class TrackerOverheadProbe:
    """Measures the wall-clock overhead of Δ(gᵢ) tracking (Fig. 8a).

    The probe repeatedly feeds a model-sized synthetic gradient through a
    tracker with the requested window size and reports the mean per-step
    overhead in milliseconds.
    """

    def __init__(self, parameter_count: int, seed: int = 0) -> None:
        if parameter_count < 1:
            raise ValueError(f"parameter_count must be >= 1, got {parameter_count}")
        self.parameter_count = int(parameter_count)
        rng = np.random.default_rng(seed)
        # Measured on the flat-vector path, matching how the SelSync engine
        # feeds gradients to trackers.
        self._fake_grads = rng.standard_normal(self.parameter_count)

    def measure_ms(self, window: int, steps: int = 50, alpha: float = 0.16) -> float:
        """Mean per-iteration tracker overhead in milliseconds."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        tracker = GradientChangeTracker(window=window, alpha=alpha)
        start = time.perf_counter()
        for _ in range(steps):
            tracker.update(self._fake_grads)
        elapsed = time.perf_counter() - start
        return elapsed / steps * 1000.0
