"""Parameter vs gradient aggregation (§III-C).

In BSP the two are equivalent (same initial state, same averaged update);
in semi-synchronous training they are not: applying the *same averaged
gradient* to *different local parameters* leaves the replicas different,
whereas averaging the parameters themselves makes every replica identical to
the global state.  Fig. 10 and Fig. 11 quantify the consequences.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Mapping, Sequence

import numpy as np


class AggregationMode(str, Enum):
    """Which quantity is averaged during a synchronization step."""

    PARAMETER = "param"
    GRADIENT = "grad"


def _validate_trees(trees: Sequence[Mapping[str, np.ndarray]]) -> None:
    if not trees:
        raise ValueError("nothing to aggregate")
    reference = trees[0]
    for i, tree in enumerate(trees[1:], start=1):
        if set(tree.keys()) != set(reference.keys()):
            raise KeyError(f"tree {i} has different parameter names than tree 0")
        for name in reference:
            if np.asarray(tree[name]).shape != np.asarray(reference[name]).shape:
                raise ValueError(
                    f"tree {i} parameter {name!r} has shape "
                    f"{np.asarray(tree[name]).shape}, expected "
                    f"{np.asarray(reference[name]).shape}"
                )


def aggregate_parameters(
    states: Sequence[Mapping[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Average worker parameter states (PA): the new global = mean of replicas."""
    _validate_trees(states)
    names = states[0].keys()
    return {
        name: np.mean([np.asarray(s[name], dtype=np.float64) for s in states], axis=0)
        for name in names
    }


def aggregate_gradients(
    grads: Sequence[Mapping[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Average worker gradients (GA): workers then apply the mean locally."""
    _validate_trees(grads)
    names = grads[0].keys()
    return {
        name: np.mean([np.asarray(g[name], dtype=np.float64) for g in grads], axis=0)
        for name in names
    }


def replica_consistency_error(
    states: Sequence[Mapping[str, np.ndarray]]
) -> float:
    """Maximum L2 distance of any replica from the replica average.

    Zero after a PA synchronization step; generally non-zero under GA, which
    is exactly the divergence §III-C warns about.
    """
    _validate_trees(states)
    mean_state = aggregate_parameters(states)
    worst = 0.0
    for state in states:
        sq = 0.0
        for name, value in mean_state.items():
            diff = np.asarray(state[name], dtype=np.float64) - value
            sq += float(np.sum(diff**2))
        worst = max(worst, float(np.sqrt(sq)))
    return worst
