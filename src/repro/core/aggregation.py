"""Parameter vs gradient aggregation (§III-C).

In BSP the two are equivalent (same initial state, same averaged update);
in semi-synchronous training they are not: applying the *same averaged
gradient* to *different local parameters* leaves the replicas different,
whereas averaging the parameters themselves makes every replica identical to
the global state.  Fig. 10 and Fig. 11 quantify the consequences.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Mapping, Sequence

import numpy as np


class AggregationMode(str, Enum):
    """Which quantity is averaged during a synchronization step."""

    PARAMETER = "param"
    GRADIENT = "grad"


def _validate_trees(trees: Sequence[Mapping[str, np.ndarray]]) -> None:
    if not trees:
        raise ValueError("nothing to aggregate")
    reference = trees[0]
    for i, tree in enumerate(trees[1:], start=1):
        if set(tree.keys()) != set(reference.keys()):
            raise KeyError(f"tree {i} has different parameter names than tree 0")
        for name in reference:
            if np.asarray(tree[name]).shape != np.asarray(reference[name]).shape:
                raise ValueError(
                    f"tree {i} parameter {name!r} has shape "
                    f"{np.asarray(tree[name]).shape}, expected "
                    f"{np.asarray(reference[name]).shape}"
                )


def aggregate_parameters(
    states: Sequence[Mapping[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Average worker parameter states (PA): the new global = mean of replicas."""
    _validate_trees(states)
    names = states[0].keys()
    return {
        name: np.mean([np.asarray(s[name], dtype=np.float64) for s in states], axis=0)
        for name in names
    }


def aggregate_gradients(
    grads: Sequence[Mapping[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Average worker gradients (GA): workers then apply the mean locally."""
    _validate_trees(grads)
    names = grads[0].keys()
    return {
        name: np.mean([np.asarray(g[name], dtype=np.float64) for g in grads], axis=0)
        for name in names
    }


def aggregate_matrix(matrix: np.ndarray) -> np.ndarray:
    """Average flat worker rows of an ``(N, D)`` matrix in one fused reduction.

    This is the engine-level form of both PA and GA: the cluster stacks all
    worker buffers, so averaging replicas (or their gradients) is a single
    ``mean(axis=0)`` instead of a per-name, per-worker Python loop.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] < 1:
        raise ValueError(f"expected a non-empty (N, D) matrix, got shape {matrix.shape}")
    return matrix.mean(axis=0)


def replica_consistency_error(states) -> float:
    """Maximum L2 distance of any replica from the replica average.

    Zero after a PA synchronization step; generally non-zero under GA, which
    is exactly the divergence §III-C warns about.  ``states`` may be a
    sequence of named state dicts or an ``(N, D)`` matrix of flat replica
    rows (the vectorized engine path).
    """
    if isinstance(states, np.ndarray):
        matrix = np.asarray(states, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ValueError(
                f"expected a non-empty (N, D) matrix, got shape {matrix.shape}"
            )
        centered = matrix - matrix.mean(axis=0)
        return float(np.sqrt((centered**2).sum(axis=1).max()))
    _validate_trees(states)
    mean_state = aggregate_parameters(states)
    worst = 0.0
    for state in states:
        sq = 0.0
        for name, value in mean_state.items():
            diff = np.asarray(state[name], dtype=np.float64) - value
            sq += float(np.sum(diff**2))
        worst = max(worst, float(np.sqrt(sq)))
    return worst
