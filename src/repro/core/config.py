"""Configuration of the SelSync trainer (Alg. 1 plus §III-C/D/E options)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class SelSyncConfig:
    """All SelSync-specific knobs.

    Attributes
    ----------
    delta:
        The synchronization threshold δ on the relative gradient change.
        ``0.0`` degenerates to BSP (synchronize every step); a value above
        the maximum observed Δ(gᵢ) degenerates to pure local SGD (Fig. 6).
    aggregation:
        ``"param"`` for parameter aggregation (the paper's recommended mode)
        or ``"grad"`` for gradient aggregation (the Fig. 10 baseline).
    ewma_window:
        Window size for the Δ(gᵢ) EWMA (paper default 25).
    ewma_alpha:
        Smoothing factor; ``None`` uses the paper's rule num_workers / 100.
    statistic:
        Gradient statistic tracked ("variance", "second_moment" or "norm").
    sync_on_first_step:
        Force a synchronization on iteration 0 so every replica starts from
        the same aggregated state even when δ is large.
    injection_alpha / injection_beta:
        Data-injection fractions (α, β) for non-IID training; both ``None``
        disables injection.  When enabled the trainer expects its loaders to
        have been built with the adjusted batch size b′ of Eqn. (3).
    """

    delta: float = 0.25
    aggregation: str = "param"
    ewma_window: int = 25
    ewma_alpha: Optional[float] = None
    statistic: str = "variance"
    sync_on_first_step: bool = True
    injection_alpha: Optional[float] = None
    injection_beta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError(f"delta must be non-negative, got {self.delta}")
        if self.aggregation not in ("param", "grad"):
            raise ValueError(
                f"aggregation must be 'param' or 'grad', got {self.aggregation!r}"
            )
        if self.ewma_window < 1:
            raise ValueError(f"ewma_window must be >= 1, got {self.ewma_window}")
        if self.ewma_alpha is not None and not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        both_none = self.injection_alpha is None and self.injection_beta is None
        both_set = self.injection_alpha is not None and self.injection_beta is not None
        if not (both_none or both_set):
            raise ValueError("injection_alpha and injection_beta must be set together")
        if both_set:
            if not 0.0 <= self.injection_alpha <= 1.0 or not 0.0 <= self.injection_beta <= 1.0:
                raise ValueError("injection fractions must be in [0, 1]")

    @property
    def uses_injection(self) -> bool:
        return self.injection_alpha is not None

    def resolved_alpha(self, num_workers: int) -> float:
        """EWMA smoothing factor, defaulting to the paper's num_workers/100 rule."""
        if self.ewma_alpha is not None:
            return self.ewma_alpha
        return min(max(num_workers / 100.0, 0.01), 1.0)

    def label(self) -> str:
        """Short human-readable config label used in tables."""
        if self.uses_injection:
            return (
                f"SelSync(α={self.injection_alpha}, β={self.injection_beta}, δ={self.delta})"
            )
        return f"SelSync(δ={self.delta}, {self.aggregation})"
