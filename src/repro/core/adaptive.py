"""Adaptive-δ extension: tune the SelSync threshold online.

The paper fixes δ before launch and notes that the useful range depends on
the model, dataset and hyperparameters (§III-B).  This extension removes
that tuning burden: :class:`AdaptiveDeltaController` adjusts δ during
training so the *realized* communication budget tracks a user-specified
target LSSR, and :class:`AdaptiveSelSyncTrainer` plugs the controller into
the ordinary SelSync loop.

The controller is a simple multiplicative-increase / multiplicative-decrease
rule over a sliding window: if the fraction of local steps in the window is
below the target (too much communication) δ is lowered towards more local
training?  No — LSSR counts *local* steps, so too few local steps means δ is
too small and must be *raised*; too many local steps means δ must be
*lowered*.  Bounds keep δ within a sane range.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.algorithms.base import BaseTrainer  # noqa: F401  (re-exported type context)
from repro.cluster.cluster import SimulatedCluster
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.optim.schedules import LRSchedule


class AdaptiveDeltaController:
    """Multiplicative controller steering δ towards a target LSSR.

    Parameters
    ----------
    target_lssr:
        Desired fraction of local steps (e.g. 0.9 = synchronize roughly every
        10th step).
    initial_delta:
        Starting threshold.
    window:
        Number of recent steps the realized LSSR is estimated over.
    gain:
        Multiplicative adjustment factor per decision (> 1).
    min_delta / max_delta:
        Hard bounds on δ.
    """

    def __init__(
        self,
        target_lssr: float = 0.9,
        initial_delta: float = 0.25,
        window: int = 20,
        gain: float = 1.25,
        min_delta: float = 1e-4,
        max_delta: float = 100.0,
    ) -> None:
        if not 0.0 <= target_lssr < 1.0:
            raise ValueError(f"target_lssr must be in [0, 1), got {target_lssr}")
        if initial_delta <= 0:
            raise ValueError(f"initial_delta must be positive, got {initial_delta}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if gain <= 1.0:
            raise ValueError(f"gain must exceed 1, got {gain}")
        if not 0 < min_delta < max_delta:
            raise ValueError("need 0 < min_delta < max_delta")
        self.target_lssr = float(target_lssr)
        self.delta = float(initial_delta)
        self.window = int(window)
        self.gain = float(gain)
        self.min_delta = float(min_delta)
        self.max_delta = float(max_delta)
        self._recent: Deque[int] = deque(maxlen=window)
        self.history: List[float] = [self.delta]

    @property
    def window_lssr(self) -> float:
        """Realized LSSR over the sliding window (1 = all local)."""
        if not self._recent:
            return 0.0
        return 1.0 - sum(self._recent) / len(self._recent)

    def observe(self, synchronized: bool) -> float:
        """Record one step's outcome and return the (possibly updated) δ."""
        self._recent.append(1 if synchronized else 0)
        if len(self._recent) == self.window:
            realized = self.window_lssr
            if realized < self.target_lssr:
                # Too much communication: raise δ so more steps stay local.
                self.delta = min(self.delta * self.gain, self.max_delta)
            elif realized > self.target_lssr:
                # Too little communication: lower δ so sync happens more often.
                self.delta = max(self.delta / self.gain, self.min_delta)
        self.history.append(self.delta)
        return self.delta


class AdaptiveSelSyncTrainer(SelSyncTrainer):
    """SelSync whose δ is steered by an :class:`AdaptiveDeltaController`."""

    name = "selsync_adaptive"

    def __init__(
        self,
        cluster: SimulatedCluster,
        controller: Optional[AdaptiveDeltaController] = None,
        config: Optional[SelSyncConfig] = None,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
    ) -> None:
        controller = controller or AdaptiveDeltaController()
        config = config or SelSyncConfig(delta=controller.delta)
        super().__init__(cluster, config=config, lr_schedule=lr_schedule, eval_every=eval_every)
        self.controller = controller
        # Start from the controller's δ rather than the static config value.
        self.config.delta = controller.delta

    def describe(self) -> str:
        return f"SelSync(adaptive, target LSSR={self.controller.target_lssr})"

    def result_extras(self) -> Dict[str, float]:
        extras = super().result_extras()
        extras["final_delta"] = self.controller.delta
        extras["target_lssr"] = self.controller.target_lssr
        return extras

    def train_step(self) -> Dict[str, float]:
        info = super().train_step()
        new_delta = self.controller.observe(bool(info["synchronized"]))
        self.config.delta = new_delta
        info["delta"] = new_delta
        return info
