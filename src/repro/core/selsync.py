"""The SelSync training loop (Alg. 1 of the paper).

Every global iteration:

1. every worker samples a local mini-batch (optionally mixed by data
   injection in non-IID mode) and computes its gradients,
2. every worker updates its Δ(gᵢ) tracker and sets its synchronization flag
   to 1 if Δ(gᵢ) ≥ δ,
3. the flags are exchanged with an (N−1)-bit all-gather,
4. if **any** flag is set the step is synchronous — under parameter
   aggregation every worker first applies its local update and then all
   replicas are averaged through the parameter server; under gradient
   aggregation the averaged gradient is applied locally by each worker —
   otherwise every worker simply keeps its local update (local SGD).

The trainer also charges the simulated clock: parallel compute per step, the
tiny flags all-gather every step, and a full model synchronization only on
synchronous steps.  The LSSR metric therefore translates directly into the
simulated speedups reported in Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.algorithms.base import BaseTrainer
from repro.cluster.cluster import SimulatedCluster
from repro.core.aggregation import AggregationMode
from repro.core.config import SelSyncConfig
from repro.core.gradient_tracker import GradientChangeTracker
from repro.data.injection import DataInjection
from repro.optim.schedules import LRSchedule
from repro.stats.variance import batch_gradient_statistic


class SelSyncTrainer(BaseTrainer):
    """Selective synchronization between local SGD and full aggregation."""

    name = "selsync"

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: Optional[SelSyncConfig] = None,
        lr_schedule: Optional[LRSchedule] = None,
        eval_every: int = 50,
        injection: Optional[DataInjection] = None,
    ) -> None:
        super().__init__(cluster, lr_schedule=lr_schedule, eval_every=eval_every)
        self.config = config or SelSyncConfig()
        if self.config.uses_injection and injection is None:
            injection = DataInjection(
                alpha=self.config.injection_alpha,
                beta=self.config.injection_beta,
                num_workers=cluster.num_workers,
                sample_bytes=getattr(cluster.train_dataset, "sample_bytes", 0),
                seed=cluster.config.seed + 17,
            )
        self.injection = injection
        alpha = self.config.resolved_alpha(cluster.num_workers)
        self.trackers: List[GradientChangeTracker] = [
            GradientChangeTracker(
                window=self.config.ewma_window,
                alpha=alpha,
                statistic=self.config.statistic,
            )
            for _ in range(cluster.num_workers)
        ]
        self.aggregation = AggregationMode(self.config.aggregation)
        self.sync_steps = 0
        self.local_steps = 0
        self.sync_step_indices: List[int] = []
        self.delta_history: List[float] = []
        self._last_step_synced = False

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """The config's short label, e.g. ``SelSync(δ=0.3, param)``."""
        return self.config.label()

    def result_extras(self) -> Dict[str, float]:
        return {
            "delta": self.config.delta,
            "sync_steps": float(self.sync_steps),
            "local_steps": float(self.local_steps),
            "max_delta_observed": float(
                max((t.max_delta for t in self.trackers), default=0.0)
            ),
        }

    # ------------------------------------------------------------------ #
    def trainer_state(self) -> Dict:
        """Extends the base snapshot with Δ(gᵢ)-tracker and sync-counter state.

        The EWMA deques are what make a restored run bit-identical: the next
        ``update_scalar`` after a restore must see exactly the window (and
        smoothed value) the original run would have.
        """
        state = super().trainer_state()
        state["trackers"] = [
            {
                "ewma_values": list(t._ewma._values),
                "ewma_smoothed": t._ewma._smoothed,
                "previous_smoothed": t._previous_smoothed,
                "history": list(t.history),
                "raw_history": list(t.raw_history),
            }
            for t in self.trackers
        ]
        state["sync_steps"] = self.sync_steps
        state["local_steps"] = self.local_steps
        state["sync_step_indices"] = list(self.sync_step_indices)
        state["delta_history"] = list(self.delta_history)
        state["last_step_synced"] = self._last_step_synced
        return state

    def load_trainer_state(self, state: Dict) -> None:
        super().load_trainer_state(state)
        for tracker, saved in zip(self.trackers, state["trackers"]):
            tracker._ewma._values.clear()
            tracker._ewma._values.extend(saved["ewma_values"])
            tracker._ewma._smoothed = saved["ewma_smoothed"]
            tracker._previous_smoothed = saved["previous_smoothed"]
            tracker.history = list(saved["history"])
            tracker.raw_history = list(saved["raw_history"])
        self.sync_steps = state["sync_steps"]
        self.local_steps = state["local_steps"]
        self.sync_step_indices = list(state["sync_step_indices"])
        self.delta_history = list(state["delta_history"])
        self._last_step_synced = state["last_step_synced"]

    # ------------------------------------------------------------------ #
    def _collect_batches(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Fetch one local batch per worker, applying data injection if enabled."""
        if self.injection is None:
            # Crashed workers (elastic fault mask) contribute None slots and
            # their loaders do not advance.
            return self.cluster.next_batches()
        batches = [worker.next_batch() for worker in self.cluster.workers]
        mixed, report = self.injection.inject(batches)
        if report.bytes_transferred > 0:
            self.cluster.charge_p2p(report.bytes_transferred)
        return mixed

    def train_step(self) -> Dict[str, float]:
        cluster = self.cluster
        lr = self.current_lr()
        batches = self._collect_batches()

        # 1. local gradients straight into the (N, D) worker matrix
        #    (Alg. 1 lines 6-9): fused batched-replica execution when the
        #    model supports it, no dict snapshots on the hot path.
        losses = cluster.compute_gradients_all(batches)

        # 2. Δ(gᵢ) for all workers in one vectorized pass over the gradient
        #    matrix; per-tracker work is scalar EWMA bookkeeping only
        #    (Alg. 1 lines 10-11).
        with telemetry.span("selsync.tracker"):
            raw_stats = batch_gradient_statistic(
                cluster.matrix.grads, self.config.statistic
            )
            active = cluster.active_mask
            flags: List[int] = []
            max_delta = 0.0
            for worker_id, (tracker, raw) in enumerate(zip(self.trackers, raw_stats)):
                # Crashed workers keep their tracker frozen and never raise
                # a flag; their (zeroed) gradient rows are skipped.
                if not active[worker_id]:
                    flags.append(0)
                    continue
                delta = tracker.update_scalar(raw)
                flags.append(1 if delta >= self.config.delta else 0)
                if delta > max_delta:
                    max_delta = delta
            self.delta_history.append(max_delta)
        ref_batch = next((b for b in batches if b is not None), None)
        cluster.charge_compute_step(
            ref_batch[1].shape[0] if ref_batch is not None else None
        )

        # 3. flags all-gather (Alg. 1 line 12) — N-1 bits per worker.
        with telemetry.span("selsync.flags"):
            gathered = cluster.backend.allgather_bits(flags)
            cluster.charge_flags_allgather()
        force_sync = self.config.sync_on_first_step and self.global_step == 0
        synchronize = bool(gathered.any()) or force_sync

        # 4. apply updates locally or synchronize (Alg. 1 lines 9, 13-15).
        if self.aggregation is AggregationMode.PARAMETER:
            cluster.apply_local_updates(lr=lr)
            if synchronize:
                with telemetry.span("selsync.sync"):
                    new_global = cluster.ps.push_matrix_parameters(cluster.active_params)
                    cluster.broadcast_state(new_global)
                    cluster.charge_sync()
        else:  # gradient aggregation
            if synchronize:
                with telemetry.span("selsync.sync"):
                    averaged = cluster.ps.push_matrix_gradients(cluster.active_grads)
                    cluster.apply_local_updates(lr=lr, grads=averaged)
                    # Track a reference replica on the PS for checkpointing.
                    cluster.ps.set_state(cluster.primary_worker.param_vector)
                    cluster.charge_sync()
            else:
                cluster.apply_local_updates(lr=lr)

        if telemetry.metrics_enabled():
            telemetry.count(
                "repro_sync_decisions_total",
                decision="sync" if synchronize else "local",
            )
        if synchronize:
            self.sync_steps += 1
            self.sync_step_indices.append(self.global_step)
            self.lssr_tracker.record_sync()
        else:
            self.local_steps += 1
            self.lssr_tracker.record_local()
        self._last_step_synced = synchronize

        return {
            "loss": float(np.mean(losses)),
            "max_delta": max_delta,
            "synchronized": float(synchronize),
            "lr": lr if lr is not None else float("nan"),
        }

    # ------------------------------------------------------------------ #
    def global_state(self) -> Dict[str, np.ndarray]:
        """Checkpoint state: the PS state after a sync, else the replica average.

        The parameter-server copy is authoritative when the *most recent*
        step synchronized AND it actually equals every replica: under PA a
        sync pushes the average back out, so that always holds; under GA a
        sync applies the same averaged gradient but never repairs earlier
        drift, so the PS (which tracks replica 0) only equals the replicas
        while **no local step has ever occurred**.  In that degenerate δ=0
        regime the PS pull keeps the checkpoint bit-identical to
        ``BSPTrainer`` (which checkpoints replica 0; an N-row mean of
        identical replicas can differ in the last ulp).  Everywhere else —
        trailing local steps, or GA after any drift — the checkpoint is the
        replica average.
        """
        if (
            self.sync_steps > 0
            and self._last_step_synced
            and (self.aggregation is AggregationMode.PARAMETER or self.local_steps == 0)
        ):
            return self.cluster.ps.pull()
        return self.cluster.average_worker_states()
