"""SelSync core: the paper's primary contribution.

* :class:`GradientChangeTracker` — low-overhead per-iteration tracking of the
  relative gradient change Δ(gᵢ) with EWMA smoothing (§III-A, Eqn. 2).
* :class:`SelSyncConfig` — the (δ, aggregation-mode, EWMA, data-injection)
  knobs of Alg. 1.
* :class:`SelSyncTrainer` — the selective-synchronization training loop that
  switches between local SGD and full synchronization based on Δ(gᵢ) ≥ δ,
  including the flags all-gather protocol, SelDP partitioning and the
  non-IID data-injection path.
* aggregation helpers for parameter vs gradient aggregation (§III-C).
* :class:`AdaptiveSelSyncTrainer` — an extension beyond the paper that tunes
  δ online to hit a target communication budget (target LSSR).
"""

from repro.core.gradient_tracker import GradientChangeTracker, TrackerOverheadProbe
from repro.core.config import SelSyncConfig
from repro.core.aggregation import (
    aggregate_parameters,
    aggregate_gradients,
    AggregationMode,
)
from repro.core.selsync import SelSyncTrainer
from repro.core.adaptive import AdaptiveDeltaController, AdaptiveSelSyncTrainer

__all__ = [
    "AdaptiveDeltaController",
    "AdaptiveSelSyncTrainer",
    "GradientChangeTracker",
    "TrackerOverheadProbe",
    "SelSyncConfig",
    "aggregate_parameters",
    "aggregate_gradients",
    "AggregationMode",
    "SelSyncTrainer",
]
