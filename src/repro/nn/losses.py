"""Loss functions with analytic gradients.

Both losses return ``(loss_value, grad_wrt_logits)`` from ``forward_backward``
so trainers can run a single fused call per step, and also expose separate
``forward`` / ``backward`` to match the layer interface used in tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def cross_entropy_with_logits(
    logits: np.ndarray, targets: np.ndarray, label_smoothing: float = 0.0
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over the batch and its gradient w.r.t. logits.

    ``logits`` may be (batch, classes) or (batch, seq, classes); ``targets``
    holds integer class ids with the matching leading shape.
    """
    # Compute in the dtype the logits arrive in (the engine's compute dtype);
    # non-float inputs are promoted to float64.
    logits = np.asarray(logits)
    if not np.issubdtype(logits.dtype, np.floating):
        logits = logits.astype(np.float64)
    targets = np.asarray(targets)
    if not np.issubdtype(targets.dtype, np.integer):
        raise TypeError("targets must be integer class ids")
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)
    if flat_targets.shape[0] != flat_logits.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    if flat_targets.min(initial=0) < 0 or flat_targets.max(initial=0) >= num_classes:
        raise IndexError("target class id out of range")
    n = flat_logits.shape[0]
    logp = log_softmax(flat_logits, axis=-1)
    probs = np.exp(logp)
    rows = np.arange(n)
    if label_smoothing > 0.0:
        smooth = label_smoothing / num_classes
        target_dist = np.full_like(logp, smooth)
        target_dist[rows, flat_targets] += 1.0 - label_smoothing
        loss = -(target_dist * logp).sum(axis=-1).mean()
        grad = (probs - target_dist) / n
    else:
        loss = -logp[rows, flat_targets].mean()
        # probs is a fresh array; mutate it in place instead of copying.
        grad = probs
        grad[rows, flat_targets] -= 1.0
        grad /= n
    return float(loss), grad.reshape(logits.shape)


class CrossEntropyLoss:
    """Softmax cross-entropy on integer targets (optionally label-smoothed)."""

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cached_grad: Optional[np.ndarray] = None

    def forward_backward(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        loss, grad = cross_entropy_with_logits(
            logits, targets, label_smoothing=self.label_smoothing
        )
        self._cached_grad = grad
        return loss, grad

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        loss, _ = self.forward_backward(logits, targets)
        return loss

    def backward(self) -> np.ndarray:
        if self._cached_grad is None:
            raise RuntimeError("CrossEntropyLoss.backward called before forward")
        return self._cached_grad

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class MSELoss:
    """Mean squared error for regression heads and unit tests."""

    def __init__(self) -> None:
        self._cached_grad: Optional[np.ndarray] = None

    def forward_backward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        diff = predictions - targets
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        self._cached_grad = grad
        return loss, grad

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        loss, _ = self.forward_backward(predictions, targets)
        return loss

    def backward(self) -> np.ndarray:
        if self._cached_grad is None:
            raise RuntimeError("MSELoss.backward called before forward")
        return self._cached_grad

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


def perplexity_from_loss(mean_cross_entropy: float) -> float:
    """Test perplexity = exp(loss), as reported for the Transformer workload."""
    return float(np.exp(min(mean_cross_entropy, 700.0)))
