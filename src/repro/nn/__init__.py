"""Pure-NumPy neural-network substrate.

This subpackage stands in for PyTorch in the original SelSync implementation.
It provides a :class:`Module`/:class:`Parameter` system with explicit manual
backpropagation, the layers needed by the paper's four workloads
(ResNet-like, VGG-like, AlexNet-like and a Transformer language model), and
the loss functions used in the evaluation.

The design goal is *correct gradients* (verified by finite differences in the
test suite) with vectorized NumPy forward/backward passes so the simulated
16-worker cluster trains in seconds on a CPU.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Linear,
    ReLU,
    GELU,
    Tanh,
    Sigmoid,
    Dropout,
    Flatten,
    Identity,
    BatchNorm1d,
    LayerNorm,
    Embedding,
    Conv2d,
    MaxPool2d,
    GlobalAvgPool2d,
    ResidualMLPBlock,
)
from repro.nn.attention import MultiHeadSelfAttention, PositionalEncoding, TransformerEncoderLayer
from repro.nn.losses import (
    CrossEntropyLoss,
    MSELoss,
    softmax,
    log_softmax,
    cross_entropy_with_logits,
)
from repro.nn import init
from repro.nn.models import (
    MLP,
    ResNetLike,
    VGGLike,
    AlexNetLike,
    TransformerLM,
    ConvNet,
    build_model,
    MODEL_REGISTRY,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Flatten",
    "Identity",
    "BatchNorm1d",
    "LayerNorm",
    "Embedding",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "ResidualMLPBlock",
    "MultiHeadSelfAttention",
    "PositionalEncoding",
    "TransformerEncoderLayer",
    "CrossEntropyLoss",
    "MSELoss",
    "softmax",
    "log_softmax",
    "cross_entropy_with_logits",
    "init",
    "MLP",
    "ResNetLike",
    "VGGLike",
    "AlexNetLike",
    "TransformerLM",
    "ConvNet",
    "build_model",
    "MODEL_REGISTRY",
]
