"""Parameter / Module abstractions with explicit manual backpropagation.

Every layer implements ``forward(x)`` and ``backward(grad_output)``;
``backward`` must be called after ``forward`` (layers cache whatever they
need) and returns the gradient with respect to the layer input while
accumulating parameter gradients into ``Parameter.grad``.

The state-dict / gradient-dict interfaces are what the distributed layer
(:mod:`repro.cluster`) uses to push and pull model replicas, mirroring how
the original system ships flat tensors over PyTorch RPC.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.utils.flatten import WIRE_DTYPE_BYTES


class Parameter:
    """A trainable tensor with an associated gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "", requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = bool(requires_grad)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True
        # Flat-buffer engine state, populated by flatten_parameters().
        self._flat_params = None
        self._flat_grads = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if name in self._parameters:
            raise KeyError(f"parameter {name!r} already registered")
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        if name in self._modules:
            raise KeyError(f"module {name!r} already registered")
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        # Fast path for hot-loop attribute writes (layer activation caches,
        # masks): plain arrays and None can never need auto-registration.
        if value is None or type(value) is np.ndarray:
            object.__setattr__(self, name, value)
            return
        # Auto-register Parameters and Modules assigned as attributes, in
        # declaration order, like torch.nn.Module does.
        if isinstance(value, Parameter):
            if "_parameters" not in self.__dict__:
                raise AttributeError("call Module.__init__() before assigning parameters")
            self._parameters[name] = value
            value.name = name
        elif isinstance(value, Module):
            if "_modules" not in self.__dict__:
                raise AttributeError("call Module.__init__() before assigning submodules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> "OrderedDict[str, Parameter]":
        out: "OrderedDict[str, Parameter]" = OrderedDict()
        for name, param in self._parameters.items():
            out[f"{prefix}{name}"] = param
        for mod_name, module in self._modules.items():
            out.update(module.named_parameters(prefix=f"{prefix}{mod_name}."))
        return out

    def parameters(self) -> List[Parameter]:
        return list(self.named_parameters().values())

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the module tree."""
        if self._flat_params is not None:
            return self._flat_params.size
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self, dtype_bytes: int = WIRE_DTYPE_BYTES) -> int:
        """Model size in bytes assuming float32 transport, used by the cost model."""
        return self.num_parameters() * dtype_bytes

    # ------------------------------------------------------------------ #
    # flat-buffer engine integration
    # ------------------------------------------------------------------ #
    def flatten_parameters(
        self,
        param_vector: Optional[np.ndarray] = None,
        grad_vector: Optional[np.ndarray] = None,
        dtype=None,
        preserve: bool = True,
    ) -> None:
        """Consolidate every parameter and gradient into contiguous buffers.

        After this call each ``Parameter.data`` / ``Parameter.grad`` is a
        zero-copy reshaped view into one flat vector of the engine compute
        dtype, so whole-model operations (optimizer steps, aggregation,
        norms) run as single fused NumPy calls.  ``param_vector`` /
        ``grad_vector`` may donate the storage (e.g. rows of the cluster's
        WorkerMatrix); current values are copied into the donated storage.

        ``dtype`` selects the compute dtype on the first flatten (float64
        default); when storage is donated the dtype is inferred from it, so
        adopting a worker-matrix row also adopts the matrix's dtype.  Initial
        float64 parameter values are cast into the flat buffer.

        Calling this again with new storage *moves* the buffers (the current
        contents are preserved; the storage dtype must match).  Only flatten
        the root of a module tree: flattening a submodule afterwards would
        re-bind its parameters away from the root's buffer.

        ``preserve=False`` re-binds onto donated storage *without* copying the
        module's current values into it — the storage's contents win.  The
        multiprocessing replica pool uses this to adopt a shared-memory
        worker-matrix row in a child process without clobbering whatever
        state the parent has already written there.
        """
        from repro.engine.dtypes import resolve_dtype
        from repro.engine.flat_buffer import FlatBuffer, ParamSpec

        params = self.named_parameters()
        if self._flat_params is not None:
            if (
                dtype is not None
                and resolve_dtype(dtype) != self._flat_params.spec.dtype
            ):
                raise TypeError(
                    f"module is already flattened as "
                    f"{self._flat_params.spec.dtype.name}; re-flattening as "
                    f"{resolve_dtype(dtype).name} is not supported"
                )
            if param_vector is not None:
                self._flat_params.rebind(param_vector, preserve=preserve)
            if grad_vector is not None:
                self._flat_grads.rebind(grad_vector, preserve=preserve)
        else:
            if dtype is None and param_vector is not None:
                dtype = param_vector.dtype
            spec = ParamSpec(
                [(name, p.data.shape) for name, p in params.items()], dtype=dtype
            )
            flat_p = FlatBuffer(spec, param_vector)
            flat_g = FlatBuffer(spec, grad_vector)
            spec.flatten_tree({n: p.data for n, p in params.items()}, out=flat_p.vector)
            spec.flatten_tree({n: p.grad for n, p in params.items()}, out=flat_g.vector)
            self._flat_params = flat_p
            self._flat_grads = flat_g
        for name, param in params.items():
            param.data = self._flat_params[name]
            param.grad = self._flat_grads[name]

    @property
    def is_flat(self) -> bool:
        return self._flat_params is not None

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of the flat buffers (flattens on first access)."""
        return self.flat_spec.dtype

    @property
    def flat_spec(self):
        """Flat layout descriptor (flattens the module on first access)."""
        if self._flat_params is None:
            self.flatten_parameters()
        return self._flat_params.spec

    @property
    def param_vector(self) -> np.ndarray:
        """Live flat view of all parameters (mutations hit the model)."""
        if self._flat_params is None:
            self.flatten_parameters()
        return self._flat_params.vector

    @property
    def grad_vector(self) -> np.ndarray:
        """Live flat view of all accumulated gradients."""
        if self._flat_params is None:
            self.flatten_parameters()
        return self._flat_grads.vector

    def load_param_vector(self, vector: np.ndarray) -> None:
        """Overwrite all parameters from a flat vector (one memcpy)."""
        if self._flat_params is None:
            self.flatten_parameters()
        self._flat_params.load_vector(vector)

    def state_view(self) -> Dict[str, np.ndarray]:
        """Zero-copy named views of the parameters (aliases the flat buffer)."""
        if self._flat_params is None:
            self.flatten_parameters()
        return self._flat_params.as_dict(copy=False)

    def grad_view(self) -> Dict[str, np.ndarray]:
        """Zero-copy named views of the gradients (aliases the flat buffer)."""
        if self._flat_params is None:
            self.flatten_parameters()
        return self._flat_grads.as_dict(copy=False)

    # ------------------------------------------------------------------ #
    # train / eval, gradients
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def zero_grad(self) -> None:
        if self._flat_grads is not None:
            self._flat_grads.fill(0.0)
            return
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # state exchange (used by the simulated parameter server / collectives)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's data.

        On a flattened module this is one contiguous memcpy (the returned
        arrays are views into that private snapshot, never into the model).
        """
        if self._flat_params is not None:
            return self._flat_params.as_dict(copy=True)
        return {name: p.data.copy() for name, p in self.named_parameters().items()}

    def load_state_dict(self, state: Mapping[str, np.ndarray], strict: bool = True) -> None:
        params = self.named_parameters()
        if strict:
            missing = set(params) - set(state)
            unexpected = set(state) - set(params)
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={sorted(missing)}, "
                    f"unexpected={sorted(unexpected)}"
                )
        for name, param in params.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value

    def gradient_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's accumulated gradient.

        On a flattened module this is one contiguous memcpy (the returned
        arrays are views into that private snapshot, never into the model).
        """
        if self._flat_grads is not None:
            return self._flat_grads.as_dict(copy=True)
        return {name: p.grad.copy() for name, p in self.named_parameters().items()}

    def load_gradient_dict(self, grads: Mapping[str, np.ndarray]) -> None:
        params = self.named_parameters()
        for name, param in params.items():
            if name not in grads:
                raise KeyError(f"gradient for parameter {name!r} missing")
            value = np.asarray(grads[name], dtype=param.grad.dtype)
            if value.shape != param.grad.shape:
                raise ValueError(
                    f"gradient shape mismatch for {name!r}: expected "
                    f"{param.grad.shape}, got {value.shape}"
                )
            param.grad[...] = value

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for idx, module in enumerate(modules):
            self.register_module(str(idx), module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        idx = len(self._layers)
        self.register_module(str(idx), module)
        self._layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, idx: int) -> Module:
        return self._layers[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self._layers):
            grad_output = layer.backward(grad_output)
        return grad_output
