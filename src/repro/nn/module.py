"""Parameter / Module abstractions with explicit manual backpropagation.

Every layer implements ``forward(x)`` and ``backward(grad_output)``;
``backward`` must be called after ``forward`` (layers cache whatever they
need) and returns the gradient with respect to the layer input while
accumulating parameter gradients into ``Parameter.grad``.

The state-dict / gradient-dict interfaces are what the distributed layer
(:mod:`repro.cluster`) uses to push and pull model replicas, mirroring how
the original system ships flat tensors over PyTorch RPC.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with an associated gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "", requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = bool(requires_grad)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if name in self._parameters:
            raise KeyError(f"parameter {name!r} already registered")
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        if name in self._modules:
            raise KeyError(f"module {name!r} already registered")
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        # Auto-register Parameters and Modules assigned as attributes, in
        # declaration order, like torch.nn.Module does.
        if isinstance(value, Parameter):
            if "_parameters" not in self.__dict__:
                raise AttributeError("call Module.__init__() before assigning parameters")
            self._parameters[name] = value
            value.name = name
        elif isinstance(value, Module):
            if "_modules" not in self.__dict__:
                raise AttributeError("call Module.__init__() before assigning submodules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> "OrderedDict[str, Parameter]":
        out: "OrderedDict[str, Parameter]" = OrderedDict()
        for name, param in self._parameters.items():
            out[f"{prefix}{name}"] = param
        for mod_name, module in self._modules.items():
            out.update(module.named_parameters(prefix=f"{prefix}{mod_name}."))
        return out

    def parameters(self) -> List[Parameter]:
        return list(self.named_parameters().values())

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the module tree."""
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self, dtype_bytes: int = 4) -> int:
        """Model size in bytes assuming float32 transport, used by the cost model."""
        return self.num_parameters() * dtype_bytes

    # ------------------------------------------------------------------ #
    # train / eval, gradients
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # state exchange (used by the simulated parameter server / collectives)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's data."""
        return {name: p.data.copy() for name, p in self.named_parameters().items()}

    def load_state_dict(self, state: Mapping[str, np.ndarray], strict: bool = True) -> None:
        params = self.named_parameters()
        if strict:
            missing = set(params) - set(state)
            unexpected = set(state) - set(params)
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={sorted(missing)}, "
                    f"unexpected={sorted(unexpected)}"
                )
        for name, param in params.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value

    def gradient_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's accumulated gradient."""
        return {name: p.grad.copy() for name, p in self.named_parameters().items()}

    def load_gradient_dict(self, grads: Mapping[str, np.ndarray]) -> None:
        params = self.named_parameters()
        for name, param in params.items():
            if name not in grads:
                raise KeyError(f"gradient for parameter {name!r} missing")
            value = np.asarray(grads[name], dtype=np.float64)
            if value.shape != param.grad.shape:
                raise ValueError(
                    f"gradient shape mismatch for {name!r}: expected "
                    f"{param.grad.shape}, got {value.shape}"
                )
            param.grad[...] = value

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for idx, module in enumerate(modules):
            self.register_module(str(idx), module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        idx = len(self._layers)
        self.register_module(str(idx), module)
        self._layers.append(module)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, idx: int) -> Module:
        return self._layers[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self._layers):
            grad_output = layer.backward(grad_output)
        return grad_output
