"""Weight initializers.

The paper notes that "the maximum degree by which gradients vary depends on
DNN size and complexity, weight initialization, among other hyperparameters"
(§III-B), so initialization is pluggable and seeded explicitly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_in, fan_out = shape[1], shape[0]
        return fan_in, fan_out
    # Conv kernels (out_channels, in_channels, kh, kw)
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def uniform(
    shape: Tuple[int, ...], low: float, high: float, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    rng = rng or np.random.default_rng()
    return rng.uniform(low, high, size=shape).astype(np.float64)


def normal(
    shape: Tuple[int, ...], std: float = 0.01, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    rng = rng or np.random.default_rng()
    return (rng.standard_normal(shape) * std).astype(np.float64)


def xavier_uniform(
    shape: Tuple[int, ...], gain: float = 1.0, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Glorot & Bengio uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -limit, limit, rng=rng)


def xavier_normal(
    shape: Tuple[int, ...], gain: float = 1.0, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return normal(shape, std=std, rng=rng)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """He et al. uniform initialization, appropriate before ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return uniform(shape, -limit, limit, rng=rng)


def kaiming_normal(
    shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return normal(shape, std=std, rng=rng)
