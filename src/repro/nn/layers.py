"""Core layers with vectorized NumPy forward and manual backward passes.

Gradient correctness of every layer is verified against central finite
differences in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter


def _as_float(x: np.ndarray, dtype=None) -> np.ndarray:
    """Coerce to the given float dtype; without one, promote non-float input.

    Layers with parameters pass their weight dtype so the whole forward /
    backward chain runs in the engine's compute dtype (float32 or float64);
    parameter-free layers preserve whatever float dtype flows through them.
    """
    if dtype is not None:
        return np.asarray(x, dtype=dtype)
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        return x.astype(np.float64)
    return x


class Linear(Module):
    """Affine transform ``y = x W^T + b`` for inputs of shape (..., in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        self.use_bias = bool(bias)
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x, self.weight.data.dtype)
        self._cache_x = x
        # Collapse leading dimensions into one GEMM (a no-op view for 2-D
        # inputs); (batch, seq, features) sequences hit a single BLAS call
        # instead of one per batch row.
        x2 = x.reshape(-1, self.in_features)
        out = x2 @ self.weight.data.T
        if self.use_bias:
            out = out + self.bias.data
        return out.reshape(x.shape[:-1] + (self.out_features,))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("Linear.backward called before forward")
        x = self._cache_x
        grad_output = _as_float(grad_output, self.weight.data.dtype)
        # Collapse leading dimensions so the same code path handles both
        # (batch, features) and (batch, seq, features) inputs.
        x2 = x.reshape(-1, self.in_features)
        g2 = grad_output.reshape(-1, self.out_features)
        self.weight.grad += g2.T @ x2
        if self.use_bias:
            self.bias.grad += g2.sum(axis=0)
        grad_input = g2 @ self.weight.data
        return grad_input.reshape(x.shape)


class Identity(Module):
    """Pass-through layer (useful in ablations that remove a block)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("ReLU.backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("Tanh.backward called before forward")
        return grad_output * (1.0 - self._out**2)


class Sigmoid(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-x))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("Sigmoid.backward called before forward")
        return grad_output * self._out * (1.0 - self._out)


class GELU(Module):
    """Gaussian error linear unit using the tanh approximation."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self) -> None:
        super().__init__()
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = _as_float(x)
        x = self._x
        inner = self._C * (x + 0.044715 * x**3)
        return 0.5 * x * (1.0 + np.tanh(inner))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("GELU.backward called before forward")
        x = self._x
        inner = self._C * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech2 = 1.0 - tanh_inner**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        return grad_output * grad


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Masks come from a private per-layer generator by default.  When a
    :class:`~repro.engine.dropout_stream.SharedDropoutStream` is attached
    (:meth:`use_shared_stream`), the layer instead takes its worker's row of
    the stream's deterministic per-(step, layer) mask block — the mode the
    batched replica executor and the multiprocessing replica pool rely on
    for exact cross-path / cross-process parity.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng or np.random.default_rng()
        self._mask: Optional[np.ndarray] = None
        self._shared_stream = None
        self._stream_layer_id = 0
        self._stream_slot = 0

    def use_shared_stream(self, stream, layer_id: int, worker_slot: int) -> None:
        """Draw future masks from ``stream`` (row ``worker_slot`` of layer blocks)."""
        self._shared_stream = stream
        self._stream_layer_id = int(layer_id)
        self._stream_slot = int(worker_slot)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        if self._shared_stream is not None:
            mask = self._shared_stream.worker_mask(
                self._stream_layer_id, x.shape, self.p, self._stream_slot
            )
            # Stay in the activation dtype (float32 mode); float64 masks keep
            # the default path's arithmetic bit-identical.
            if mask.dtype != x.dtype and np.issubdtype(x.dtype, np.floating):
                mask = mask.astype(x.dtype)
            self._mask = mask
        else:
            self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("Flatten.backward called before forward")
        return grad_output.reshape(self._shape)


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of (batch, features)."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        # Running statistics are buffers, not parameters: they follow the
        # local replica and are not synchronized (matching DDP defaults).
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x, self.gamma.data.dtype)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (batch, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            # Running statistics stay float64 for numerically stable EWMAs
            # regardless of the compute dtype.
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean.astype(x.dtype)
            var = self.running_var.astype(x.dtype)
        x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._cache = (x_hat, var)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("BatchNorm1d.backward called before forward")
        x_hat, var = self._cache
        n = x_hat.shape[0]
        self.gamma.grad += (grad_output * x_hat).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        if not self.training:
            return grad_output * self.gamma.data / np.sqrt(var + self.eps)
        dxhat = grad_output * self.gamma.data
        inv_std = 1.0 / np.sqrt(var + self.eps)
        grad_input = (
            inv_std
            / n
            * (n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0))
        )
        return grad_input


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = int(normalized_shape)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x, self.gamma.data.dtype)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("LayerNorm.backward called before forward")
        x_hat, inv_std = self._cache
        d = x_hat.shape[-1]
        reduce_axes = tuple(range(grad_output.ndim - 1))
        self.gamma.grad += (grad_output * x_hat).sum(axis=reduce_axes)
        self.beta.grad += grad_output.sum(axis=reduce_axes)
        dxhat = grad_output * self.gamma.data
        grad_input = (
            inv_std
            / d
            * (
                d * dxhat
                - dxhat.sum(axis=-1, keepdims=True)
                - x_hat * (dxhat * x_hat).sum(axis=-1, keepdims=True)
            )
        )
        return grad_input


class Embedding(Module):
    """Token-id lookup table mapping int arrays (..., ) -> (..., dim)."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=0.02, rng=rng))
        self._ids: Optional[np.ndarray] = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if not np.issubdtype(token_ids.dtype, np.integer):
            raise TypeError("Embedding expects integer token ids")
        if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= self.num_embeddings:
            raise IndexError("token id out of range for Embedding")
        self._ids = token_ids
        return self.weight.data[token_ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("Embedding.backward called before forward")
        flat_ids = self._ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        # Token ids carry no gradient; return zeros with the input's shape so
        # callers composing embeddings with other inputs stay shape-correct.
        return np.zeros(self._ids.shape, dtype=np.float64)


# --------------------------------------------------------------------------- #
# Convolutional layers (im2col based)
# --------------------------------------------------------------------------- #
def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Convert (B, C, H, W) into (B, out_h, out_w, C*kh*kw) patches."""
    b, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    shape = (b, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(b, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`, scattering patch gradients back to the image."""
    b, c, h, w = x_shape
    h_p, w_p = h + 2 * padding, w + 2 * padding
    out_h = (h_p - kh) // stride + 1
    out_w = (w_p - kw) // stride + 1
    x_grad = np.zeros((b, c, h_p, w_p), dtype=cols.dtype)
    cols = cols.reshape(b, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            x_grad[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding:
        return x_grad[:, :, padding:-padding, padding:-padding]
    return x_grad


class Conv2d(Module):
    """2-D convolution over (batch, channels, height, width) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng=rng))
        self.use_bias = bool(bias)
        if bias:
            self.bias = Parameter(init.zeros((out_channels,)))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x, self.weight.data.dtype)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expects (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        w_flat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w_flat.T  # (B, out_h, out_w, out_channels)
        if self.use_bias:
            out = out + self.bias.data
        self._cache = (x.shape, cols)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Conv2d.backward called before forward")
        x_shape, cols = self._cache
        k = self.kernel_size
        g = grad_output.transpose(0, 2, 3, 1)  # (B, out_h, out_w, out_c)
        g2 = g.reshape(-1, self.out_channels)
        cols2 = cols.reshape(-1, cols.shape[-1])
        self.weight.grad += (g2.T @ cols2).reshape(self.weight.data.shape)
        if self.use_bias:
            self.bias.grad += g2.sum(axis=0)
        w_flat = self.weight.data.reshape(self.out_channels, -1)
        dcols = g @ w_flat  # (B, out_h, out_w, C*k*k)
        return _col2im(dcols, x_shape, k, k, self.stride, self.padding)


class MaxPool2d(Module):
    """Max pooling with square window and equal stride."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = _as_float(x)
        b, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        shape = (b, c, out_h, out_w, k, k)
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2] * s,
            x.strides[3] * s,
            x.strides[2],
            x.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        windows = windows.reshape(b, c, out_h, out_w, k * k)
        idx = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, idx)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MaxPool2d.backward called before forward")
        x_shape, idx = self._cache
        b, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        out_h, out_w = idx.shape[2], idx.shape[3]
        grad_input = np.zeros(x_shape, dtype=np.asarray(grad_output).dtype)
        # Scatter each output gradient back to its argmax location.
        rows = idx // k
        cols = idx % k
        for i in range(out_h):
            for j in range(out_w):
                r = i * s + rows[:, :, i, j]
                cc = j * s + cols[:, :, i, j]
                bb, ch = np.meshgrid(np.arange(b), np.arange(c), indexing="ij")
                grad_input[bb, ch, r, cc] += grad_output[:, :, i, j]
        return grad_input


class GlobalAvgPool2d(Module):
    """Average over spatial dimensions: (B, C, H, W) -> (B, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("GlobalAvgPool2d.backward called before forward")
        b, c, h, w = self._shape
        return np.broadcast_to(
            grad_output[:, :, None, None] / (h * w), self._shape
        ).copy()


class ResidualMLPBlock(Module):
    """Two-layer MLP block with a skip connection and layer norm.

    This is the structural analog of a ResNet basic block: the skip
    connection is what distinguishes the ``ResNetLike`` workload from the
    plain ``VGGLike`` stack in the reproduction (the paper attributes
    ResNet101's robustness to its skip connections, §IV-C).
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        zero_init_residual: bool = True,
    ) -> None:
        super().__init__()
        hidden_dim = hidden_dim or dim
        self.norm = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.act = ReLU()
        self.fc2 = Linear(hidden_dim, dim, rng=rng)
        if zero_init_residual:
            # Zero-initializing the residual branch's output projection makes
            # every block start as the identity, which keeps activation
            # variance bounded with depth and lets the deep analog train
            # stably at the paper's learning rates.
            self.fc2.weight.data[...] = 0.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.norm.forward(x)
        h = self.fc1.forward(h)
        h = self.act.forward(h)
        h = self.fc2.forward(h)
        return x + h

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = self.fc2.backward(grad_output)
        g = self.act.backward(g)
        g = self.fc1.backward(g)
        g = self.norm.backward(g)
        return grad_output + g
