"""Model registry mapping workload names to constructors.

The experiment harness and benchmarks refer to workloads by the paper's model
names ("resnet101", "vgg11", "alexnet", "transformer"); the registry maps
those to the reproduction analogs with sensible default sizes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.models.alexnet import AlexNetLike
from repro.nn.models.convnet import ConvNet
from repro.nn.models.mlp import MLP
from repro.nn.models.resnet import ResNetLike
from repro.nn.models.transformer import TransformerLM
from repro.nn.models.vgg import VGGLike
from repro.nn.module import Module

ModelFactory = Callable[..., Module]

MODEL_REGISTRY: Dict[str, ModelFactory] = {}


def register_model(name: str, factory: ModelFactory) -> None:
    """Register a model constructor under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in MODEL_REGISTRY:
        raise KeyError(f"model {name!r} already registered")
    MODEL_REGISTRY[key] = factory


def build_model(name: str, rng: Optional[np.random.Generator] = None, **kwargs) -> Module:
    """Instantiate a registered model by name.

    Extra keyword arguments override the analog's defaults (e.g.
    ``build_model("resnet101", depth=4)``).
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[key](rng=rng, **kwargs)


# --------------------------------------------------------------------------- #
# default registrations: paper names -> analogs
# --------------------------------------------------------------------------- #
register_model("resnet101", lambda rng=None, **kw: ResNetLike(rng=rng, **kw))
register_model("resnetlike", lambda rng=None, **kw: ResNetLike(rng=rng, **kw))
register_model(
    "vgg11",
    lambda rng=None, **kw: VGGLike(rng=rng, **{"num_classes": 100, **kw}),
)
register_model("vgglike", lambda rng=None, **kw: VGGLike(rng=rng, **kw))
register_model(
    "alexnet",
    lambda rng=None, **kw: AlexNetLike(rng=rng, **{"num_classes": 100, **kw}),
)
register_model("alexnetlike", lambda rng=None, **kw: AlexNetLike(rng=rng, **kw))
register_model("transformer", lambda rng=None, **kw: TransformerLM(rng=rng, **kw))
register_model("transformerlm", lambda rng=None, **kw: TransformerLM(rng=rng, **kw))
register_model("convnet", lambda rng=None, **kw: ConvNet(rng=rng, **kw))
register_model(
    "mlp",
    lambda rng=None, **kw: MLP(kw.pop("sizes", (32, 64, 10)), rng=rng, **kw),
)
