"""Small true-convolutional classifier.

Not one of the four headline workloads, but exercises the Conv2d/MaxPool
substrate end-to-end and serves as an optional image workload for users who
want spatially structured inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers import (
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential


class ConvNet(Module):
    """Two-conv-block classifier over (batch, channels, H, W) inputs."""

    def __init__(
        self,
        in_channels: int = 1,
        num_classes: int = 10,
        image_size: int = 8,
        channels: Tuple[int, int] = (8, 16),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.num_classes = int(num_classes)
        self.image_size = int(image_size)
        c1, c2 = channels
        self.features = Sequential(
            Conv2d(in_channels, c1, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            GlobalAvgPool2d(),
        )
        self.head = Linear(c2, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)  # first parameterized layer casts to the compute dtype
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        h = self.features.forward(x)
        return self.head.forward(h)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad_output)
        return self.features.backward(g)
