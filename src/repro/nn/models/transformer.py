"""Transformer language model workload.

Matches the paper's Transformer configuration in shape: encoder with 2 hidden
layers, 2 attention heads, embedding/model dimension 200, dropout 0.2 and a
bptt window of 35 tokens — here configurable and defaulting to a smaller,
CPU-friendly variant trained on a synthetic Markov token stream.  The model
reports test *perplexity* (exp of the mean cross-entropy), the lower the
better, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import PositionalEncoding, TransformerEncoderLayer
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module


class TransformerLM(Module):
    """Causal Transformer encoder for next-token prediction."""

    def __init__(
        self,
        vocab_size: int = 200,
        d_model: int = 32,
        num_heads: int = 2,
        num_layers: int = 2,
        dim_feedforward: int = 64,
        dropout: float = 0.0,
        max_len: int = 256,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.vocab_size = int(vocab_size)
        self.d_model = int(d_model)
        self.num_layers = int(num_layers)
        self.embedding = Embedding(vocab_size, d_model, rng=rng)
        self.pos_encoding = PositionalEncoding(d_model, max_len=max_len)
        self._layers = []
        for i in range(num_layers):
            layer = TransformerEncoderLayer(
                d_model,
                num_heads,
                dim_feedforward,
                dropout=dropout,
                causal=True,
                rng=rng,
            )
            self.register_module(f"layer{i}", layer)
            self._layers.append(layer)
        self.final_norm = LayerNorm(d_model)
        self.lm_head = Linear(d_model, vocab_size, rng=rng)

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Map (batch, seq) int tokens to (batch, seq, vocab) logits."""
        h = self.embedding.forward(token_ids)
        h = self.pos_encoding.forward(h)
        for layer in self._layers:
            h = layer.forward(h)
        h = self.final_norm.forward(h)
        return self.lm_head.forward(h)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = self.lm_head.backward(grad_output)
        g = self.final_norm.backward(g)
        for layer in reversed(self._layers):
            g = layer.backward(g)
        g = self.pos_encoding.backward(g)
        return self.embedding.backward(g)
