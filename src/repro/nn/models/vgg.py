"""VGG-like workload: plain deep stack with a large dense head.

Structural analog of VGG11 on CIFAR-100: no skip connections, a wide dense
classifier head that dominates the parameter count (the real VGG11 is 507 MB,
by far the largest model in the paper, which is why its relative throughput
in Fig. 1a is the worst).  The ``head_width`` knob controls that imbalance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Dropout, Linear, ReLU
from repro.nn.module import Module, Sequential


class VGGLike(Module):
    """Plain (skip-free) deep MLP with an over-sized classifier head."""

    def __init__(
        self,
        input_dim: int = 64,
        num_classes: int = 100,
        feature_widths: Sequence[int] = (128, 128, 96, 96),
        head_width: int = 256,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        layers = []
        prev = input_dim
        for width in feature_widths:
            layers.append(Linear(prev, width, rng=rng))
            layers.append(ReLU())
            prev = width
        self.features = Sequential(*layers)
        head_layers = [
            Linear(prev, head_width, rng=rng),
            ReLU(),
        ]
        if dropout > 0:
            head_layers.append(Dropout(dropout, rng=rng))
        head_layers.extend(
            [
                Linear(head_width, head_width, rng=rng),
                ReLU(),
                Linear(head_width, num_classes, rng=rng),
            ]
        )
        self.classifier = Sequential(*head_layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)  # first parameterized layer casts to the compute dtype
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected (batch, {self.input_dim}), got {x.shape}")
        h = self.features.forward(x)
        return self.classifier.forward(h)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = self.classifier.backward(grad_output)
        return self.features.backward(g)
