"""Generic multi-layer perceptron used in unit tests and quick examples."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Linear, ReLU, Tanh
from repro.nn.module import Module, Sequential


class MLP(Module):
    """Fully connected network: ``sizes[0] -> sizes[1] -> ... -> sizes[-1]``.

    Parameters
    ----------
    sizes:
        Layer widths including input and output dimensions.
    activation:
        ``"relu"`` or ``"tanh"`` applied between hidden layers.
    rng:
        Generator used to initialize weights.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        act_factory = {"relu": ReLU, "tanh": Tanh}.get(activation)
        if act_factory is None:
            raise ValueError(f"unknown activation {activation!r}")
        layers = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
            if i < len(sizes) - 2:
                layers.append(act_factory())
        self.net = Sequential(*layers)
        self.input_dim = int(sizes[0])
        self.output_dim = int(sizes[-1])

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)
