"""AlexNet-like workload: shallow network with dropout.

Structural analog of AlexNet on ImageNet-1K: few layers (so staleness in SSP
is tolerable, §IV-E), dropout regularization, trained with Adam and a fixed
learning rate in the paper's setup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear, ReLU
from repro.nn.module import Module, Sequential


class AlexNetLike(Module):
    """Shallow MLP classifier with dropout between the two hidden layers."""

    def __init__(
        self,
        input_dim: int = 64,
        num_classes: int = 100,
        hidden_dim: int = 192,
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self.net = Sequential(
            Linear(input_dim, hidden_dim, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Linear(hidden_dim, hidden_dim, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Linear(hidden_dim, num_classes, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)  # first parameterized layer casts to the compute dtype
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected (batch, {self.input_dim}), got {x.shape}")
        return self.net.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)
