"""ResNet-like workload: deep residual MLP classifier.

Structural analog of ResNet101 on CIFAR-10 in the paper: many layers, skip
connections, batch-norm-free pre-norm blocks.  The skip connections are the
property the paper leans on when explaining why this workload tolerates
infrequent synchronization better than the plain VGG-style stack (§IV-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear, ReLU, ResidualMLPBlock
from repro.nn.module import Module


class ResNetLike(Module):
    """Residual MLP classifier for flattened image-like inputs."""

    def __init__(
        self,
        input_dim: int = 64,
        num_classes: int = 10,
        width: int = 96,
        depth: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self.width = int(width)
        self.depth = int(depth)
        self.stem = Linear(input_dim, width, rng=rng)
        self.stem_act = ReLU()
        self._blocks = []
        for i in range(depth):
            block = ResidualMLPBlock(width, hidden_dim=width, rng=rng)
            self.register_module(f"block{i}", block)
            self._blocks.append(block)
        self.head = Linear(width, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)  # first parameterized layer casts to the compute dtype
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected (batch, {self.input_dim}), got {x.shape}")
        h = self.stem_act.forward(self.stem.forward(x))
        for block in self._blocks:
            h = block.forward(h)
        return self.head.forward(h)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad_output)
        for block in reversed(self._blocks):
            g = block.backward(g)
        g = self.stem_act.backward(g)
        return self.stem.backward(g)
