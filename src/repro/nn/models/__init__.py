"""Workload models mirroring the four DNNs evaluated in the paper.

Each model is a down-scaled structural analog (see DESIGN.md §2):

* :class:`ResNetLike`  — deep residual MLP (skip connections, like ResNet101)
* :class:`VGGLike`     — plain deep stack with a large dense head (like VGG11)
* :class:`AlexNetLike` — shallow network with dropout (like AlexNet)
* :class:`TransformerLM` — 2-layer, 2-head encoder language model
* :class:`ConvNet`     — small true-convolutional classifier (used in tests
  and as an optional image workload)
"""

from repro.nn.models.mlp import MLP
from repro.nn.models.resnet import ResNetLike
from repro.nn.models.vgg import VGGLike
from repro.nn.models.alexnet import AlexNetLike
from repro.nn.models.transformer import TransformerLM
from repro.nn.models.convnet import ConvNet
from repro.nn.models.registry import MODEL_REGISTRY, build_model, register_model

__all__ = [
    "MLP",
    "ResNetLike",
    "VGGLike",
    "AlexNetLike",
    "TransformerLM",
    "ConvNet",
    "MODEL_REGISTRY",
    "build_model",
    "register_model",
]
