"""Transformer building blocks: multi-head self-attention and encoder layers.

The paper's fourth workload is a small Transformer encoder language model
trained on WikiText-103 (2 layers, 2 heads, d_model = 200, bptt = 35).  The
reproduction keeps the same architecture shape, scaled to a synthetic token
stream, with fully manual backpropagation through attention.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, LayerNorm, Linear, ReLU
from repro.nn.module import Module


def _softmax_last(x: np.ndarray) -> np.ndarray:
    x = x - x.max(axis=-1, keepdims=True)
    e = np.exp(x)
    return e / e.sum(axis=-1, keepdims=True)


class PositionalEncoding(Module):
    """Sinusoidal positional encoding added to token embeddings."""

    def __init__(self, d_model: int, max_len: int = 2048) -> None:
        super().__init__()
        self.d_model = int(d_model)
        position = np.arange(max_len)[:, None].astype(np.float64)
        div_term = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
        pe = np.zeros((max_len, d_model), dtype=np.float64)
        pe[:, 0::2] = np.sin(position * div_term)
        pe[:, 1::2] = np.cos(position * div_term[: (d_model + 1) // 2][: pe[:, 1::2].shape[1]])
        self.pe = pe

    def forward(self, x: np.ndarray) -> np.ndarray:
        seq_len = x.shape[1]
        if seq_len > self.pe.shape[0]:
            raise ValueError(
                f"sequence length {seq_len} exceeds positional table {self.pe.shape[0]}"
            )
        pe = self.pe[:seq_len]
        if x.dtype != pe.dtype and np.issubdtype(x.dtype, np.floating):
            # Stay in the engine compute dtype (float32 mode) instead of
            # promoting the whole activation stream to float64.
            pe = pe.astype(x.dtype)
        return x + pe

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Supports an optional causal mask (used by the language model so position
    ``t`` only attends to positions ``<= t``).
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        causal: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = int(d_model)
        self.num_heads = int(num_heads)
        self.d_head = d_model // num_heads
        self.causal = bool(causal)
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Compute in the projection weights' dtype (the engine compute dtype).
        x = np.asarray(x, dtype=self.q_proj.weight.data.dtype)
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ValueError(f"expected (batch, seq, {self.d_model}), got {x.shape}")
        q = self._split_heads(self.q_proj.forward(x))
        k = self._split_heads(self.k_proj.forward(x))
        v = self._split_heads(self.v_proj.forward(x))
        scale = 1.0 / np.sqrt(self.d_head)
        # Stacked GEMMs (BLAS) instead of einsum: same contractions, one
        # matmul per (batch, head) slice.
        scores = np.matmul(q, k.swapaxes(-1, -2)) * scale
        if self.causal:
            t = x.shape[1]
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            scores = np.where(mask, -1e30, scores)
        attn = _softmax_last(scores)
        context = np.matmul(attn, v)
        merged = self._merge_heads(context)
        out = self.out_proj.forward(merged)
        self._cache = (q, k, v, attn, scale)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MultiHeadSelfAttention.backward called before forward")
        q, k, v, attn, scale = self._cache
        d_merged = self.out_proj.backward(grad_output)
        b, t, _ = d_merged.shape
        d_context = d_merged.reshape(b, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)
        # context = attn @ v
        d_attn = np.matmul(d_context, v.swapaxes(-1, -2))
        d_v = np.matmul(attn.swapaxes(-1, -2), d_context)
        # softmax backward over the last axis
        d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
        d_scores = d_scores * scale
        d_q = np.matmul(d_scores, k)
        d_k = np.matmul(d_scores.swapaxes(-1, -2), q)
        dx = self.q_proj.backward(self._merge_heads(d_q))
        dx = dx + self.k_proj.backward(self._merge_heads(d_k))
        dx = dx + self.v_proj.backward(self._merge_heads(d_v))
        return dx


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder block: attention + feed-forward, both residual."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dim_feedforward: int,
        dropout: float = 0.0,
        causal: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(d_model)
        self.attn = MultiHeadSelfAttention(d_model, num_heads, causal=causal, rng=rng)
        self.drop1 = Dropout(dropout, rng=rng)
        self.norm2 = LayerNorm(d_model)
        self.ff1 = Linear(d_model, dim_feedforward, rng=rng)
        self.act = ReLU()
        self.ff2 = Linear(dim_feedforward, d_model, rng=rng)
        self.drop2 = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        a = self.norm1.forward(x)
        a = self.attn.forward(a)
        a = self.drop1.forward(a)
        x = x + a
        f = self.norm2.forward(x)
        f = self.ff1.forward(f)
        f = self.act.forward(f)
        f = self.ff2.forward(f)
        f = self.drop2.forward(f)
        return x + f

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        g_ff = self.drop2.backward(grad_output)
        g_ff = self.ff2.backward(g_ff)
        g_ff = self.act.backward(g_ff)
        g_ff = self.ff1.backward(g_ff)
        g_ff = self.norm2.backward(g_ff)
        g_mid = grad_output + g_ff
        g_attn = self.drop1.backward(g_mid)
        g_attn = self.attn.backward(g_attn)
        g_attn = self.norm1.backward(g_attn)
        return g_mid + g_attn
