"""One façade over every way to run an experiment.

The harness historically grew three divergent entry points — single runs
through :func:`repro.harness.experiment.run_experiment`, parameter sweeps
through :func:`repro.harness.sweep.grid_sweep` /
:func:`repro.harness.sweep.run_sweep_stacked`, and registered scenarios
through :func:`repro.scenarios.runner.run_scenario` — each with its own
argument spellings (``workers`` vs ``num_workers``, ``fixed`` vs algorithm
kwargs).  This module unifies them behind one request/response shape:

* :class:`RunRequest` — a frozen, validated description of *one submission*
  of any kind (``experiment``, ``sweep``, ``comparison``, ``throughput`` or
  a registered ``scenario`` by name), with a single canonical spelling for
  every knob and :data:`DEPRECATED_ALIASES` shims (``workers`` →
  ``num_workers``, ``algo`` → ``algorithm``, ``fixed`` → ``params``) that
  emit :class:`DeprecationWarning` instead of silently diverging;
* :class:`RunResult` — the uniform response: JSON-ready ``records`` in the
  exact :class:`~repro.scenarios.runner.ScenarioRecord` shape, a ``meta``
  block, endpoint-parity verdicts, and the raw
  :class:`~repro.algorithms.base.TrainingResult` objects for assertions;
* :func:`run` — the single executor.  The CLI and the experiment service
  (:mod:`repro.service`) both dispatch through it, so an HTTP submission and
  a local call can never drift: byte-identical inputs produce byte-identical
  records.

``run`` accepts an optional ``cancel_check`` callable polled between runs
(see :class:`~repro.scenarios.runner.RunCancelled`), which the service's
task manager uses for cooperative job cancellation.

Provenance and persistence: ``run`` is the one place run identity is
computed — every :class:`RunResult` carries ``run_id`` / ``config_hash`` /
``git_sha`` / ``started_at`` (see :mod:`repro.results.provenance`), stamped
into ``meta["provenance"]`` so store keys, service job records and JSON
artifacts all agree.  Passing ``record_to=`` (a path or
:class:`~repro.results.store.ResultsStore`) appends the finished result to
the persistent run store; the service task manager turns this on by
default so HTTP jobs and direct runs land in the same history.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro import telemetry
from repro.algorithms.base import TrainingResult
from repro.results.provenance import Provenance, build_provenance
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import (
    RunCancelled,
    ScenarioReport,
    result_metrics,
    run_scenario,
)
from repro.scenarios.spec import (
    ComparisonScenario,
    FaultScenario,
    ScenarioError,
    SweepScenario,
    ThroughputScenario,
)

__all__ = [
    "ApiError",
    "DEPRECATED_ALIASES",
    "KINDS",
    "RunCancelled",
    "RunRequest",
    "RunResult",
    "apply_aliases",
    "request_from_action",
    "run",
]


class ApiError(ValueError):
    """A :class:`RunRequest` is malformed (bad kind, missing field, …)."""


#: The five submission kinds one :class:`RunRequest` can describe.
KINDS = ("experiment", "sweep", "comparison", "throughput", "scenario")

#: Legacy argument spellings accepted (with a :class:`DeprecationWarning`)
#: wherever a request is built from keyword arguments or JSON payloads.
#: ``workers`` is the CLI's historical flag, ``algo`` a common shorthand,
#: and ``fixed`` is :func:`repro.harness.sweep.grid_sweep`'s name for the
#: per-run constants the façade calls ``params``.
DEPRECATED_ALIASES = {
    "workers": "num_workers",
    "algo": "algorithm",
    "fixed": "params",
}

#: Kind-specific fields forwarded to the scenario dataclass constructor via
#: ``options`` (e.g. comparison ``methods`` / ``baseline``, throughput
#: ``worker_counts``).  Everything else lives as a first-class field.


def apply_aliases(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonicalize deprecated key spellings in ``payload`` (with warnings).

    Returns a new dict; a payload supplying both the alias and its canonical
    spelling is rejected with :class:`ApiError` rather than guessing.
    """
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        canonical = DEPRECATED_ALIASES.get(key)
        if canonical is None:
            out[key] = value
            continue
        if canonical in payload:
            raise ApiError(
                f"both {key!r} (deprecated) and {canonical!r} given; "
                f"use {canonical!r} only"
            )
        warnings.warn(
            f"argument {key!r} is deprecated; use {canonical!r}",
            DeprecationWarning,
            stacklevel=3,
        )
        out[canonical] = value
    return out


@dataclass(frozen=True)
class RunRequest:
    """One validated submission of any kind, with canonical field names.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    workload / algorithm:
        Required for ``experiment`` and ``sweep`` kinds (a
        :data:`~repro.harness.experiment.WORKLOAD_PRESETS` key and a
        :data:`~repro.scenarios.spec.KNOWN_ALGORITHMS` name).
    scenario:
        Registered scenario name, required for (and exclusive to) the
        ``scenario`` kind.
    grid:
        ``{parameter: values}`` swept by the ``sweep`` kind.
    params:
        Per-run algorithm keywords (``delta``, ``staleness``, …) — the
        ``experiment`` kind passes them to the trainer, the ``sweep`` kind
        to every grid point (what :func:`~repro.harness.sweep.grid_sweep`
        called ``fixed``).
    options:
        Kind-specific extras forwarded to the scenario dataclass —
        ``comparison``: ``methods`` (required), ``workloads``, ``baseline``,
        ``use_convergence``, …; ``throughput``: ``workloads`` (required),
        ``worker_counts``, ``topology``; ``sweep``: ``verify_endpoints``,
        ``tags``.
    num_workers / iterations / seed / eval_every / batch_size:
        Run sizing; ``None`` means the kind's default (or, for the
        ``scenario`` kind, the registered scenario's own values).
    dtype / transport_dtype / pool_workers / pool_start_method:
        Engine knobs (training kinds only).
    stacked / max_stacked_rows:
        Fused ``(S·N, D)`` sweep execution (``sweep`` and ``scenario``
        kinds).
    fault_seed / failure_rate / straggler_fraction / mttr:
        Fault injection (:mod:`repro.faults`).  The ``experiment`` kind
        accepts all four (a positive rate arms a seeded crash/straggler
        process); the ``scenario`` kind accepts ``fault_seed`` only, as an
        override for registered fault scenarios.
    title:
        Optional human-readable title for ad-hoc scenario kinds.
    """

    kind: str
    workload: Optional[str] = None
    algorithm: Optional[str] = None
    scenario: Optional[str] = None
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)
    num_workers: Optional[int] = None
    iterations: Optional[int] = None
    seed: Optional[int] = None
    eval_every: Optional[int] = None
    batch_size: Optional[int] = None
    dtype: Optional[str] = None
    transport_dtype: Optional[str] = None
    pool_workers: int = 0
    pool_start_method: Optional[str] = None
    stacked: Optional[bool] = None
    max_stacked_rows: Optional[int] = None
    fault_seed: Optional[int] = None
    failure_rate: Optional[float] = None
    straggler_fraction: Optional[float] = None
    mttr: Optional[int] = None
    title: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ApiError(f"unknown request kind {self.kind!r}; one of {KINDS}")
        object.__setattr__(self, "grid", dict(self.grid))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "options", dict(self.options))
        checker = getattr(self, f"_check_{self.kind}")
        checker()
        if self.fault_seed is not None and int(self.fault_seed) < 0:
            raise ApiError(f"fault_seed must be >= 0, got {self.fault_seed}")
        for name in ("failure_rate", "straggler_fraction"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= float(value) <= 1.0:
                raise ApiError(f"{name} must be in [0, 1], got {value}")
        if self.mttr is not None and int(self.mttr) < 1:
            raise ApiError(f"mttr must be >= 1, got {self.mttr}")
        for name in ("num_workers", "iterations"):
            value = getattr(self, name)
            if value is not None and int(value) < 1:
                raise ApiError(f"{name} must be >= 1, got {value}")
        if self.seed is not None and int(self.seed) < 0:
            raise ApiError(f"seed must be >= 0, got {self.seed}")

    # -- per-kind shape checks --------------------------------------------- #
    def _require(self, *names: str) -> None:
        for name in names:
            if not getattr(self, name):
                raise ApiError(f"{self.kind} request requires {name!r}")

    def _forbid(self, *names: str) -> None:
        for name in names:
            value = getattr(self, name)
            default = {} if name in ("grid", "params", "options") else None
            if value not in (default, None):
                raise ApiError(
                    f"{self.kind} request does not accept {name!r}"
                )

    def _check_experiment(self) -> None:
        self._require("workload", "algorithm")
        self._forbid("scenario", "grid", "options", "stacked", "max_stacked_rows")

    def _check_sweep(self) -> None:
        # algorithm defaults to "selsync", matching the SweepScenario dataclass
        self._require("workload", "grid")
        self._forbid("scenario")
        self._forbid("fault_seed", "failure_rate", "straggler_fraction", "mttr")

    def _check_comparison(self) -> None:
        self._forbid("scenario", "workload", "algorithm", "grid", "params")
        self._forbid("stacked", "max_stacked_rows")
        self._forbid("fault_seed", "failure_rate", "straggler_fraction", "mttr")
        if "methods" not in self.options:
            raise ApiError("comparison request requires options['methods']")

    def _check_throughput(self) -> None:
        self._forbid(
            "scenario", "workload", "algorithm", "grid", "params",
            "num_workers", "iterations", "seed", "eval_every", "batch_size",
            "dtype", "transport_dtype", "pool_start_method",
            "stacked", "max_stacked_rows",
            "fault_seed", "failure_rate", "straggler_fraction", "mttr",
        )
        if self.pool_workers:
            raise ApiError("throughput request does not accept 'pool_workers'")
        if "workloads" not in self.options:
            raise ApiError("throughput request requires options['workloads']")

    def _check_scenario(self) -> None:
        self._require("scenario")
        self._forbid(
            "workload", "algorithm", "grid", "params", "options",
            "eval_every", "batch_size", "dtype", "transport_dtype",
            "pool_start_method",
        )
        # fault_seed stays allowed: it overrides registered fault scenarios.
        self._forbid("failure_rate", "straggler_fraction", "mttr")
        if self.pool_workers:
            raise ApiError(
                "scenario request does not accept 'pool_workers'; the "
                "registered scenario owns its engine knobs"
            )

    # -- construction ------------------------------------------------------ #
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRequest":
        """Build a request from a JSON-style mapping (aliases accepted)."""
        if not isinstance(payload, Mapping):
            raise ApiError(f"request payload must be a mapping, got {type(payload).__name__}")
        data = apply_aliases(payload)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ApiError(f"unknown request fields {sorted(unknown)}")
        return cls(**data)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation with defaulted fields omitted."""
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value in (None, {}, ()) or (f.name == "pool_workers" and not value):
                continue
            out[f.name] = value
        return out

    # -- deep validation --------------------------------------------------- #
    def validate(self) -> "RunRequest":
        """Run the full (scenario-dataclass) validation without executing.

        The service controller calls this at submission time so an invalid
        grid, unknown workload or unstackable configuration is a 400
        response, not a FAILED job hours later.  Raises :class:`ApiError` or
        :class:`~repro.scenarios.spec.ScenarioError`; returns ``self``.
        """
        if self.kind == "experiment":
            self._check_experiment_targets()
        elif self.kind == "scenario":
            scenario = get_scenario(self.scenario)
            if self.stacked is not None and not isinstance(scenario, SweepScenario):
                raise ApiError(
                    f"scenario {self.scenario!r} is a {scenario.kind} scenario; "
                    "the 'stacked' override applies to sweep scenarios only"
                )
            if isinstance(scenario, ThroughputScenario) and (
                self.iterations is not None
                or self.num_workers is not None
                or self.seed is not None
            ):
                raise ApiError(
                    f"scenario {self.scenario!r} is analytic; iterations/"
                    "num_workers/seed overrides do not apply"
                )
            if self.fault_seed is not None and not isinstance(scenario, FaultScenario):
                raise ApiError(
                    f"scenario {self.scenario!r} is a {scenario.kind} scenario; "
                    "the 'fault_seed' override applies to fault scenarios only"
                )
        else:
            self._build_scenario()
        return self

    def _check_experiment_targets(self) -> None:
        from repro.harness.experiment import WORKLOAD_PRESETS
        from repro.scenarios.spec import KNOWN_ALGORITHMS, RESERVED_PARAMETERS

        if self.workload not in WORKLOAD_PRESETS:
            raise ApiError(
                f"unknown workload {self.workload!r}; "
                f"available: {sorted(WORKLOAD_PRESETS)}"
            )
        if self.algorithm not in KNOWN_ALGORITHMS:
            raise ApiError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {sorted(KNOWN_ALGORITHMS)}"
            )
        reserved = set(self.params) & RESERVED_PARAMETERS
        if reserved:
            raise ApiError(
                f"params {sorted(reserved)} are reserved run settings; "
                "set them as request fields instead"
            )

    def _build_scenario(self):
        """The ad-hoc scenario dataclass for sweep/comparison/throughput kinds."""
        title = self.title or f"ad-hoc {self.kind} submission"
        if self.kind == "sweep":
            return SweepScenario(
                name="adhoc-sweep",
                title=title,
                workload=self.workload,
                algorithm=self.algorithm or "selsync",
                grid=self.grid,
                fixed=self.params,
                num_workers=self.num_workers or 4,
                iterations=self.iterations or 80,
                seed=self.seed or 0,
                eval_every=self.eval_every,
                batch_size=self.batch_size,
                dtype=self.dtype or "float64",
                transport_dtype=self.transport_dtype,
                pool_workers=self.pool_workers,
                pool_start_method=self.pool_start_method,
                stacked=bool(self.stacked),
                max_stacked_rows=self.max_stacked_rows,
                **self.options,
            )
        if self.kind == "comparison":
            options = dict(self.options)
            methods = {
                label: tuple(entry) if isinstance(entry, list) else entry
                for label, entry in dict(options.pop("methods")).items()
            }
            workloads = tuple(options.pop("workloads", ("resnet101",)))
            baseline = options.pop("baseline", next(iter(methods)))
            return ComparisonScenario(
                name="adhoc-comparison",
                title=title,
                methods=methods,
                workloads=workloads,
                baseline=baseline,
                num_workers=self.num_workers or 4,
                iterations=self.iterations or 160,
                seed=self.seed or 0,
                eval_every=self.eval_every,
                dtype=self.dtype or "float64",
                transport_dtype=self.transport_dtype,
                pool_workers=self.pool_workers,
                pool_start_method=self.pool_start_method,
                **options,
            )
        if self.kind == "throughput":
            options = dict(self.options)
            return ThroughputScenario(
                name="adhoc-throughput",
                title=title,
                workloads=tuple(options.pop("workloads")),
                **options,
            )
        raise ApiError(f"kind {self.kind!r} has no ad-hoc scenario form")


@dataclass
class RunResult:
    """The uniform response shape every :func:`run` call produces.

    ``records`` are JSON-ready dicts in the exact
    :class:`~repro.scenarios.runner.ScenarioRecord` shape
    (``{"params", "label", "metrics"}``), so a record that travelled through
    the experiment service is byte-identical to one produced locally.
    ``results`` keeps the raw :class:`~repro.algorithms.base.TrainingResult`
    objects (never serialized); ``report`` is the underlying
    :class:`~repro.scenarios.runner.ScenarioReport` when one exists.

    ``run_id`` / ``config_hash`` / ``git_sha`` / ``started_at`` are the
    stable provenance fields :func:`run` stamps on every result — the keys
    the persistent run store (:mod:`repro.results`) files it under.
    """

    kind: str
    label: str
    records: List[Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)
    endpoints: Dict[str, Any] = field(default_factory=dict)
    results: Dict[str, TrainingResult] = field(default_factory=dict)
    report: Optional[ScenarioReport] = None
    run_id: Optional[str] = None
    config_hash: Optional[str] = None
    git_sha: Optional[str] = None
    started_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (drops the raw result objects)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "label": self.label,
            "meta": dict(self.meta),
            "records": [dict(record) for record in self.records],
        }
        if self.run_id is not None:
            payload["provenance"] = {
                "run_id": self.run_id,
                "config_hash": self.config_hash,
                "git_sha": self.git_sha,
                "started_at": self.started_at,
            }
        if self.endpoints:
            payload["endpoints"] = self.endpoints
        return payload


def request_from_action(action: str, payload: Mapping[str, Any]) -> RunRequest:
    """Build a :class:`RunRequest` from a service action + flat payload.

    The HTTP API's submission bodies are flat (``{"sweep": {"workload":
    ..., "grid": ...}}``); fields that are not first-class
    :class:`RunRequest` fields (comparison ``methods``, throughput
    ``worker_counts``, …) are folded into ``options``.  The ``scenario``
    action maps its ``name`` key onto :attr:`RunRequest.scenario`.
    """
    if action not in KINDS:
        raise ApiError(f"unknown action {action!r}; one of {KINDS}")
    if not isinstance(payload, Mapping):
        raise ApiError(f"{action} payload must be a mapping, got {type(payload).__name__}")
    data = apply_aliases(payload)
    if action == "scenario":
        data = dict(data)
        name = data.pop("name", None)
        if not name:
            raise ApiError("scenario action requires a 'name'")
        return RunRequest(kind="scenario", scenario=name, **data)
    known = {f.name for f in fields(RunRequest)} - {"kind", "scenario", "options"}
    request_fields: Dict[str, Any] = {}
    options: Dict[str, Any] = {}
    for key, value in data.items():
        (request_fields if key in known else options)[key] = value
    return RunRequest(kind=action, options=options, **request_fields)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def _run_experiment_kind(
    request: RunRequest, cancel_check: Optional[Callable[[], bool]]
) -> RunResult:
    from repro.harness.experiment import run_experiment
    from repro.scenarios.runner import _check_cancelled

    _check_cancelled(cancel_check)
    iterations = request.iterations or 100
    num_workers = request.num_workers or 4
    seed = request.seed or 0
    eval_every = request.eval_every or max(iterations // 8, 1)
    fault_kwargs: Dict[str, Any] = {}
    if request.fault_seed is not None:
        fault_kwargs["fault_seed"] = int(request.fault_seed)
    if request.failure_rate is not None:
        fault_kwargs["failure_rate"] = float(request.failure_rate)
    if request.straggler_fraction is not None:
        fault_kwargs["straggler_fraction"] = float(request.straggler_fraction)
    if request.mttr is not None:
        fault_kwargs["mttr"] = int(request.mttr)
    phase_start = telemetry.phase_snapshot()
    out = run_experiment(
        request.workload,
        request.algorithm,
        num_workers=num_workers,
        iterations=iterations,
        seed=seed,
        eval_every=eval_every,
        batch_size=request.batch_size,
        dtype=request.dtype or "float64",
        transport_dtype=request.transport_dtype,
        pool_workers=request.pool_workers,
        pool_start_method=request.pool_start_method,
        **fault_kwargs,
        **request.params,
    )
    record = {
        "params": dict(request.params),
        "label": out.algorithm,
        "metrics": result_metrics(out.result),
    }
    # Opt-in per-phase breakdown: present only when telemetry tracing was
    # active during the run, so default artifacts stay byte-identical.
    phases = telemetry.phase_delta(phase_start)
    if phases:
        record["phases"] = phases
    meta = {
        "workload": out.workload,
        "algorithm": request.algorithm,
        "num_workers": num_workers,
        "iterations": iterations,
        "seed": seed,
        "eval_every": eval_every,
        "params": dict(request.params),
        "dtype": request.dtype or "float64",
        "transport_dtype": request.transport_dtype,
        "pool_workers": request.pool_workers,
    }
    if fault_kwargs:
        meta["faults"] = dict(fault_kwargs)
    if phases:
        meta["phases"] = phases
    return RunResult(
        kind="experiment",
        label=out.algorithm,
        records=[record],
        meta=meta,
        results={"run": out.result},
    )


def _from_report(kind: str, report: ScenarioReport) -> RunResult:
    payload = report.to_dict()
    meta = dict(payload["meta"])
    meta.setdefault("name", report.name)
    meta.setdefault("title", report.title)
    meta.setdefault("scenario_kind", report.kind)
    return RunResult(
        kind=kind,
        label=report.name,
        records=payload["records"],
        meta=meta,
        endpoints=payload.get("endpoints", {}),
        results=dict(report.results),
        report=report,
    )


def _store_scenario_key(request: RunRequest, result: RunResult) -> str:
    """The run-store scenario name one result is filed under.

    Registered scenarios keep their registry name; ad-hoc kinds use the
    report's name (``adhoc-sweep``, …); single experiments get a
    deterministic ``experiment/<workload>/<algorithm>`` key so repeated runs
    of the same pair form one trend series.
    """
    if request.kind == "scenario":
        return str(request.scenario)
    if request.kind == "experiment":
        return f"experiment/{request.workload}/{request.algorithm}"
    return str(result.meta.get("name") or result.label)


def _stamp_provenance(result: RunResult, provenance: Provenance) -> RunResult:
    result.run_id = provenance.run_id
    result.config_hash = provenance.config_hash
    result.git_sha = provenance.git_sha
    result.started_at = provenance.started_at
    result.meta["provenance"] = provenance.to_dict()
    return result


def run(
    request: Optional[RunRequest] = None,
    *,
    cancel_check: Optional[Callable[[], bool]] = None,
    record_to: Optional[Any] = None,
    **kwargs: Any,
) -> RunResult:
    """Execute one submission of any kind and return its :class:`RunResult`.

    Call with a prebuilt :class:`RunRequest`, or with keyword arguments
    (``run(kind="experiment", workload=..., algorithm=...)``) which are
    passed through :func:`apply_aliases` — deprecated spellings work but
    warn.  ``cancel_check`` is polled between runs; see
    :class:`~repro.scenarios.runner.RunCancelled`.

    ``record_to`` (a path or :class:`~repro.results.store.ResultsStore`)
    appends the finished result to the persistent run store under the
    provenance key stamped on the result, making it queryable via
    ``repro scenario history`` and the service's ``GET /v1/history``.
    """
    if request is None:
        request = RunRequest.from_dict(kwargs)
    elif kwargs:
        raise ApiError("pass either a RunRequest or keyword arguments, not both")
    # One place computes run identity: the config hash covers the canonical
    # request (so a service submission and a local call of the same request
    # hash identically), the timestamp is taken before training starts.
    provenance = build_provenance(request.to_dict())
    if request.kind == "experiment":
        request.validate()
        result = _run_experiment_kind(request, cancel_check)
    elif request.kind == "scenario":
        request.validate()
        report = run_scenario(
            request.scenario,
            iterations=request.iterations,
            num_workers=request.num_workers,
            seed=request.seed,
            stacked=request.stacked,
            max_stacked_rows=request.max_stacked_rows,
            fault_seed=request.fault_seed,
            cancel_check=cancel_check,
        )
        result = _from_report("scenario", report)
    else:
        scenario = request._build_scenario()
        report = run_scenario(scenario, cancel_check=cancel_check)
        result = _from_report(request.kind, report)
    _stamp_provenance(result, provenance)
    if record_to is not None:
        from repro.results import record_run_payload

        record_run_payload(
            record_to,
            scenario=_store_scenario_key(request, result),
            kind=result.kind,
            records=result.records,
            meta=result.meta,
            tags=tuple(result.meta.get("tags", ())),
            provenance=provenance,
        )
    return result
