"""Benchmark-file comparison: one engine for two-point diffs and history.

This module owns what ``benchmarks/compare_bench.py`` accreted over PRs 3–7
(that script is now a thin :class:`DeprecationWarning` shim): flattening the
three benchmark artifacts into comparable metric rows, the two-point delta
table, and — new — the store-backed rolling comparison behind
``repro bench compare --store``.

The three artifact kinds share one uniform interface (:data:`BENCH_KINDS`):

``engine``
    ``BENCH_engine.json`` — every numeric leaf under a ``steps_per_sec``
    key, higher is better.
``scenarios``
    ``BENCH_scenarios.json`` — the ``stacked_sweep`` steps/sec rows plus a
    synthesized per-scenario sweep rate, higher is better.
``service``
    ``BENCH_service.json`` — submit/e2e latency percentiles, *lower* is
    better.

Store-backed mode appends the current rows to a
:class:`~repro.results.store.ResultsStore` (scenario key ``bench-<kind>``)
and assesses each metric against the rolling median-of-last-K baseline
(:func:`repro.results.regression.assess_series`), failing only on
*confirmed* (≥ ``min_consecutive`` consecutive out-of-band) regressions —
a single noisy run can no longer fail the gate the way a two-point diff
could.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.results.regression import (
    DEFAULT_MIN_CONSECUTIVE,
    DEFAULT_WINDOW,
    assess_series,
)
from repro.results.store import ResultsStore, StoredRun, open_store

__all__ = [
    "BENCH_KINDS",
    "BenchKind",
    "compare",
    "compare_store",
    "load_metrics",
    "load_scenario_metrics",
    "load_service_metrics",
    "record_bench_file",
    "service_throughput_line",
    "stacked_speedup_table",
]


def _collect_steps_per_sec(node, prefix: str = "", in_sps: bool = False) -> Dict[str, float]:
    """Flatten every numeric leaf governed by a ``steps_per_sec`` key."""
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            owns = in_sps or key == "steps_per_sec" or key.endswith("steps_per_sec")
            out.update(_collect_steps_per_sec(value, path, owns))
    elif isinstance(node, (int, float)) and not isinstance(node, bool) and in_sps:
        out[prefix] = float(node)
    return out


def load_metrics(path: Path) -> Dict[str, float]:
    return _collect_steps_per_sec(json.loads(Path(path).read_text()))


def _scenario_sweep_rate(summary: dict) -> Optional[float]:
    """Total trainer steps across the grid per second of sweep wall-clock."""
    meta = summary.get("meta") or {}
    wall = meta.get("sweep_wall_seconds")
    records = summary.get("records") or []
    iterations = meta.get("iterations")
    if not wall or not records or not iterations:
        return None
    return iterations * len(records) / wall


def load_scenario_metrics(path: Path) -> Dict[str, float]:
    """Flatten a BENCH_scenarios.json file into comparable steps/sec rows.

    Includes every ``steps_per_sec`` leaf (the ``stacked_sweep`` section's
    sequential / stacked rates) plus one synthesized
    ``<scenario>.sweep_steps_per_sec`` row per scenario report.
    """
    report = json.loads(Path(path).read_text())
    metrics = _collect_steps_per_sec(report)
    for name, summary in report.items():
        if not isinstance(summary, dict):
            continue
        rate = _scenario_sweep_rate(summary)
        if rate is not None:
            metrics[f"{name}.sweep_steps_per_sec"] = rate
    return metrics


def stacked_speedup_table(path: Path) -> str:
    """Markdown table of the current stacked-vs-sequential speedups.

    Speedups are dimensionless, so unlike raw steps/sec they transfer
    between hosts; an empty string is returned when the file has no
    ``stacked_sweep`` section.
    """
    report = json.loads(Path(path).read_text())
    section = report.get("stacked_sweep") or {}
    scenarios = section.get("scenarios") or {}
    if not scenarios:
        return ""
    lines = [
        "### Stacked sweep executor: fused vs sequential",
        "",
        "| scenario | sequential (s) | stacked (s) | speedup | exact parity |",
        "| --- | ---: | ---: | ---: | :--- |",
    ]
    for name in sorted(scenarios):
        row = scenarios[name]
        lines.append(
            f"| {name} | {row['sequential_seconds']:.2f} | "
            f"{row['stacked_seconds']:.2f} | {row['speedup']:.2f}x | "
            f"{'yes' if row.get('exact_parity') else 'NO'} |"
        )
    cores = (section.get("config") or {}).get("cpu_count")
    lines.append("")
    lines.append(f"Measured on a host with {cores} cores.")
    return "\n".join(lines)


def load_service_metrics(path: Path) -> Dict[str, float]:
    """Flatten a BENCH_service.json file into comparable latency rows.

    Only the latency percentiles gate (lower is better); ``jobs_per_sec``
    would invert the comparison, so it is reported via
    :func:`service_throughput_line` instead.
    """
    report = json.loads(Path(path).read_text())
    load = report.get("load") or {}
    metrics: Dict[str, float] = {}
    for section in ("submit_latency_ms", "e2e_latency_ms"):
        for quantile in ("p50", "p99"):
            value = (load.get(section) or {}).get(quantile)
            if value is not None:
                metrics[f"{section}.{quantile}"] = float(value)
    return metrics


def service_throughput_line(path: Path) -> str:
    """One informational line for the current run's sustained throughput."""
    load = (json.loads(Path(path).read_text()) or {}).get("load") or {}
    if not load:
        return ""
    return (
        f"Current sustained throughput: {load.get('jobs_per_sec', 0)} jobs/s "
        f"({load.get('completed_jobs', 0)}/{load.get('total_jobs', 0)} jobs, "
        f"{load.get('failures', 0)} failures)."
    )


@dataclass(frozen=True)
class BenchKind:
    """One benchmark artifact family's comparison recipe."""

    name: str
    load: Callable[[Path], Dict[str, float]]
    lower_is_better: bool
    title: str
    #: Optional extra markdown rendered from the current file (speedup
    #: tables, throughput lines).
    extras: Callable[[Path], List[str]] = lambda path: []


BENCH_KINDS: Dict[str, BenchKind] = {
    "engine": BenchKind(
        name="engine",
        load=load_metrics,
        lower_is_better=False,
        title="### Engine perf: baseline vs current (steps/sec)",
    ),
    "scenarios": BenchKind(
        name="scenarios",
        load=load_scenario_metrics,
        lower_is_better=False,
        title="### Scenario sweeps: baseline vs current (steps/sec)",
        extras=lambda path: [t for t in [stacked_speedup_table(path)] if t],
    ),
    "service": BenchKind(
        name="service",
        load=load_service_metrics,
        lower_is_better=True,
        title="### Service load: baseline vs current (latency ms, lower is better)",
        extras=lambda path: [t for t in [service_throughput_line(path)] if t],
    ),
}


def bench_scenario_key(kind: str) -> str:
    """The store scenario name benchmark rows of ``kind`` are filed under."""
    return f"bench-{kind}"


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    max_regression: float,
    title: str = "### Engine perf: baseline vs current (steps/sec)",
    lower_is_better: bool = False,
) -> Tuple[str, bool]:
    """Render the two-point delta table; returns (markdown, failed).

    ``lower_is_better=True`` flips the regression direction for latency-style
    metrics: growth beyond ``max_regression`` fails instead of shrinkage.
    """
    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    lines = [
        title,
        "",
        "| key | baseline | current | delta | status |",
        "| --- | ---: | ---: | ---: | :--- |",
    ]
    failed = False
    for key in shared:
        base, cur = baseline[key], current[key]
        delta = (cur - base) / base if base else float("inf")
        if lower_is_better:
            regressed = delta > max_regression
            improved = delta <= 0
        else:
            regressed = delta < -max_regression
            improved = delta >= 0
        failed |= regressed
        status = "REGRESSION" if regressed else ("ok" if improved else "ok (within limit)")
        lines.append(f"| {key} | {base:.1f} | {cur:.1f} | {delta:+.1%} | {status} |")
    for key in only_baseline:
        lines.append(f"| {key} | {baseline[key]:.1f} | — | — | not measured in this run |")
    for key in only_current:
        lines.append(f"| {key} | — | {current[key]:.1f} | — | new key |")
    lines.append("")
    direction = "above" if lower_is_better else "below"
    lines.append(
        f"Regression limit: {max_regression:.0%} {direction} baseline "
        f"({'FAILED' if failed else 'passed'})."
    )
    return "\n".join(lines), failed


# --------------------------------------------------------------------------- #
# the persistent-store path
# --------------------------------------------------------------------------- #
def record_bench_file(
    store: Union[str, ResultsStore],
    kind: str,
    path: Path,
    *,
    tags: Sequence[str] = (),
) -> StoredRun:
    """Append one benchmark artifact's flattened rows to the run store.

    The run is filed as ``scenario=bench-<kind>, kind=bench`` with a single
    record holding every flattened metric, so
    :meth:`~repro.results.store.ResultsStore.trend` works on benchmark rows
    exactly as it does on scenario records.
    """
    if kind not in BENCH_KINDS:
        raise KeyError(f"unknown bench kind {kind!r}; one of {sorted(BENCH_KINDS)}")
    metrics = BENCH_KINDS[kind].load(Path(path))
    handle, owns = open_store(store)
    try:
        return handle.append(
            bench_scenario_key(kind),
            "bench",
            [{"params": {}, "label": kind, "metrics": metrics}],
            meta={"source": str(path), "bench_kind": kind},
            tags=tags,
        )
    finally:
        if owns:
            handle.close()


def compare_store(
    store: Union[str, ResultsStore],
    kind: str,
    current: Path,
    *,
    window: int = DEFAULT_WINDOW,
    min_consecutive: int = DEFAULT_MIN_CONSECUTIVE,
    record: bool = True,
    tags: Sequence[str] = (),
) -> Tuple[str, bool]:
    """Rolling-baseline comparison of ``current`` against stored history.

    Appends the current rows first (unless ``record=False``), then assesses
    every metric's full series: the verdict table reports the
    median-of-last-``window`` baseline, the IQR noise band, and the trailing
    out-of-band streak.  Returns ``(markdown, any_confirmed_regression)`` —
    only a streak of at least ``min_consecutive`` fails, so the first
    out-of-band run warns instead of failing and a blip never fails.
    """
    if kind not in BENCH_KINDS:
        raise KeyError(f"unknown bench kind {kind!r}; one of {sorted(BENCH_KINDS)}")
    recipe = BENCH_KINDS[kind]
    current_metrics = recipe.load(Path(current))
    handle, owns = open_store(store)
    try:
        if record:
            record_bench_file(handle, kind, Path(current), tags=tags)
        scenario = bench_scenario_key(kind)
        lines = [
            f"### {kind}: rolling baseline (median of last {window}) vs current",
            "",
            "| key | baseline | band | current | delta | streak | status |",
            "| --- | ---: | ---: | ---: | ---: | ---: | :--- |",
        ]
        failed = False
        for key in sorted(current_metrics):
            points = store_trend_with_current(
                handle, scenario, key, current_metrics[key], recorded=record
            )
            verdict = assess_series(
                points,
                metric=key,
                window=window,
                min_consecutive=min_consecutive,
                lower_is_better=recipe.lower_is_better,
            )
            if verdict.insufficient_history:
                lines.append(
                    f"| {key} | — | — | {current_metrics[key]:.1f} | — | — | "
                    "insufficient history |"
                )
                continue
            failed |= verdict.confirmed
            status = (
                "CONFIRMED REGRESSION"
                if verdict.confirmed
                else ("out of band (unconfirmed)" if verdict.consecutive else "ok")
            )
            lines.append(
                f"| {key} | {verdict.baseline:.1f} | ±{verdict.band:.1f} | "
                f"{verdict.latest:.1f} | {verdict.delta:+.1%} | "
                f"{verdict.consecutive} | {status} |"
            )
        lines.append("")
        lines.append(
            f"Confirmed = {min_consecutive}+ consecutive out-of-band runs "
            f"({'FAILED' if failed else 'passed'})."
        )
        return "\n".join(lines), failed
    finally:
        if owns:
            handle.close()


def store_trend_with_current(
    store: ResultsStore,
    scenario: str,
    metric: str,
    current_value: float,
    *,
    recorded: bool,
) -> List[float]:
    """The metric's chronological series including the current observation."""
    values = [point["value"] for point in store.trend(scenario, metric)]
    if not recorded:
        values.append(float(current_value))
    return values
