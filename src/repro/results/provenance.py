"""Stable run identity, computed in one place.

Every recorded run is keyed by four provenance fields:

``run_id``
    A fresh UUID per execution — two runs of the same configuration get
    distinct ids.
``config_hash``
    A short SHA-256 digest of the *canonicalized* run configuration
    (sorted-key JSON), so byte-identical submissions hash identically no
    matter which layer built them — the store, the service job record and
    the JSON artifact all agree on what "the same experiment" means.
``git_sha``
    The code version that produced the run: ``REPRO_GIT_SHA`` /
    ``GITHUB_SHA`` when set (CI), otherwise ``git rev-parse HEAD``,
    otherwise ``"unknown"`` (e.g. an installed wheel outside a checkout).
``started_at``
    POSIX timestamp taken when the run began.

:func:`repro.api.run` is the single call site that stamps these onto every
:class:`~repro.api.RunResult` (and into its ``meta`` block), so callers
never invent their own identity scheme.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "Provenance",
    "build_provenance",
    "config_hash",
    "current_git_sha",
    "new_run_id",
]

#: Hex digits kept from the SHA-256 digest — plenty for collision-free
#: grouping of run configurations while staying readable in tables.
_HASH_LENGTH = 16

#: Environment variables consulted (in order) before shelling out to git.
_SHA_ENV_VARS = ("REPRO_GIT_SHA", "GITHUB_SHA")

_git_sha_cache: Optional[str] = None


def new_run_id() -> str:
    """A fresh, globally unique run id."""
    return uuid.uuid4().hex


def config_hash(config: Mapping[str, Any]) -> str:
    """Short, stable digest of a run configuration mapping.

    Canonicalizes with sorted-key JSON (non-JSON values fall back to
    ``str``), so dict ordering and equivalent spellings of the same
    submission produce the same hash.
    """
    canonical = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_HASH_LENGTH]


def current_git_sha() -> str:
    """The git commit of the running code, or ``"unknown"``.

    Cached after the first lookup; set ``REPRO_GIT_SHA`` to override (CI
    sets ``GITHUB_SHA``, which is honoured too).
    """
    global _git_sha_cache
    if _git_sha_cache is not None:
        return _git_sha_cache
    for var in _SHA_ENV_VARS:
        value = os.environ.get(var, "").strip()
        if value:
            _git_sha_cache = value
            return value
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
        sha = out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    _git_sha_cache = sha or "unknown"
    return _git_sha_cache


@dataclass(frozen=True)
class Provenance:
    """The four identity fields every stored run carries."""

    run_id: str
    config_hash: str
    git_sha: str
    started_at: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "run_id": self.run_id,
            "config_hash": self.config_hash,
            "git_sha": self.git_sha,
            "started_at": self.started_at,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Provenance":
        return cls(
            run_id=str(payload["run_id"]),
            config_hash=str(payload["config_hash"]),
            git_sha=str(payload["git_sha"]),
            started_at=float(payload["started_at"]),
        )


def build_provenance(
    config: Mapping[str, Any], *, clock=time.time
) -> Provenance:
    """Provenance for a run of ``config`` starting now."""
    return Provenance(
        run_id=new_run_id(),
        config_hash=config_hash(config),
        git_sha=current_git_sha(),
        started_at=float(clock()),
    )
