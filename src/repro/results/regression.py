"""History-aware regression detection against a rolling baseline.

``compare_bench.py`` could only diff two points, so it could not tell a
noisy blip from a real trend.  This module replaces the single checked-in
baseline with a *rolling* one, in the spirit of the incremental
changing-clusters-over-time analyses in PAPERS.md: membership of the
"regressed" set is computed against a window of recent history, not one
snapshot.

For each point of a metric series the detector builds a baseline from the
``window`` points strictly before it:

* **baseline** — the median of the window (robust to a single outlier
  poisoning the reference, unlike a mean);
* **noise band** — ``iqr_scale`` × the window's interquartile range,
  floored at ``min_rel_band`` of the baseline so a perfectly flat history
  (IQR 0) still tolerates small changes;
* a point is **out of band** when it falls outside ``baseline ± band`` in
  the *bad* direction (below for higher-is-better metrics like steps/sec,
  above for lower-is-better ones like latency);
* a regression is **confirmed** only when the ``min_consecutive`` most
  recent points are all out of band.  A single 30% blip therefore never
  trips the gate — the next in-band point resets the streak — while a
  sustained 30% drop is flagged on its second consecutive observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "SeriesAssessment",
    "assess_series",
    "assess_trend",
    "DEFAULT_WINDOW",
    "DEFAULT_MIN_CONSECUTIVE",
]

#: Median-of-last-K window size used when the caller does not choose one.
DEFAULT_WINDOW = 5

#: Out-of-band observations required, consecutively, to confirm a regression.
DEFAULT_MIN_CONSECUTIVE = 2

#: Points of history required before any verdict is attempted.
_MIN_HISTORY = 2


@dataclass
class SeriesAssessment:
    """The rolling-baseline verdict for one metric series.

    ``out_of_band`` has one entry per assessed point (the series minus the
    warm-up prefix that lacked history); ``consecutive`` counts the trailing
    out-of-band streak, and ``confirmed`` is the gate: streak ≥
    ``min_consecutive``.
    """

    metric: str
    values: List[float]
    baseline: Optional[float] = None
    band: Optional[float] = None
    latest: Optional[float] = None
    delta: Optional[float] = None
    lower_is_better: bool = False
    out_of_band: List[bool] = field(default_factory=list)
    consecutive: int = 0
    confirmed: bool = False
    insufficient_history: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "band": self.band,
            "latest": self.latest,
            "delta": self.delta,
            "lower_is_better": self.lower_is_better,
            "consecutive_out_of_band": self.consecutive,
            "confirmed_regression": self.confirmed,
            "insufficient_history": self.insufficient_history,
            "points": len(self.values),
        }


def _rolling_reference(window: Sequence[float], min_rel_band: float, iqr_scale: float):
    arr = np.asarray(window, dtype=float)
    median = float(np.median(arr))
    q75, q25 = np.percentile(arr, [75.0, 25.0])
    band = max(iqr_scale * float(q75 - q25), min_rel_band * abs(median))
    return median, band


def assess_series(
    values: Sequence[float],
    *,
    metric: str = "value",
    window: int = DEFAULT_WINDOW,
    min_consecutive: int = DEFAULT_MIN_CONSECUTIVE,
    iqr_scale: float = 1.5,
    min_rel_band: float = 0.05,
    lower_is_better: bool = False,
) -> SeriesAssessment:
    """Assess one chronological metric series (oldest first).

    Returns a :class:`SeriesAssessment`; with fewer than two history points
    before the latest value there is nothing to baseline against, so the
    verdict is ``insufficient_history`` and never confirmed.
    """
    series = [float(v) for v in values]
    out = SeriesAssessment(
        metric=metric,
        values=series,
        lower_is_better=lower_is_better,
        latest=series[-1] if series else None,
    )
    if len(series) <= _MIN_HISTORY - 1 or window < 1:
        out.insufficient_history = True
        return out
    flags: List[bool] = []
    for i in range(1, len(series)):
        history = series[max(0, i - window): i]
        if len(history) < _MIN_HISTORY:
            flags.append(False)
            continue
        median, band = _rolling_reference(history, min_rel_band, iqr_scale)
        if lower_is_better:
            flags.append(series[i] > median + band)
        else:
            flags.append(series[i] < median - band)
    out.out_of_band = flags
    streak = 0
    for flag in reversed(flags):
        if not flag:
            break
        streak += 1
    out.consecutive = streak
    out.confirmed = streak >= max(1, int(min_consecutive))
    history = series[max(0, len(series) - 1 - window): len(series) - 1]
    if len(history) >= _MIN_HISTORY:
        median, band = _rolling_reference(history, min_rel_band, iqr_scale)
        out.baseline = median
        out.band = band
        out.delta = (series[-1] - median) / median if median else float("inf")
    else:
        out.insufficient_history = True
    return out


def assess_trend(
    store,
    scenario: str,
    metric: str,
    *,
    where: Optional[Dict[str, Any]] = None,
    window: int = DEFAULT_WINDOW,
    min_consecutive: int = DEFAULT_MIN_CONSECUTIVE,
    lower_is_better: bool = False,
    **kwargs: Any,
) -> SeriesAssessment:
    """Assess a stored scenario's metric trend (see :meth:`ResultsStore.trend`)."""
    points = store.trend(scenario, metric, where=where)
    return assess_series(
        [point["value"] for point in points],
        metric=metric,
        window=window,
        min_consecutive=min_consecutive,
        lower_is_better=lower_is_better,
        **kwargs,
    )
