"""Persistent, schema-versioned SQLite store of run results.

Where :class:`repro.service.store.JobStore` is a *queue* (it pages a job's
records out and forgets the history), this store is the repo's perf
*memory*: every :class:`~repro.scenarios.runner.ScenarioRecord` and
benchmark row ever appended, keyed by
``(scenario, config_hash, git_sha, started_at)``, queryable as per-metric
trend series that the rolling-baseline regression detector
(:mod:`repro.results.regression`) consumes.

Two tables:

``runs``
    One row per recorded execution.  ``seq`` (AUTOINCREMENT) gives the
    stable global ordering used for marker pagination — the same Trove-style
    convention as the job store.
``records``
    The JSON-ready result records of each run, one row per record in run
    order, offset/limit paginated.

The schema is versioned in ``schema_version``; opening a store with any
other version fails loudly rather than corrupting data — the same
discipline as the service's job store.

Thread-safety: one shared connection guarded by an :class:`threading.RLock`
(``check_same_thread=False``) with ``BEGIN IMMEDIATE`` around appends, plus
a generous ``busy_timeout`` so separate processes appending to the same
file (nightly CI steps) serialize instead of erroring.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.results.provenance import Provenance, build_provenance

__all__ = ["ResultsStore", "SCHEMA_VERSION", "StoredRun", "open_store"]

#: Bump when the table layout changes; add a migration in ``_ensure_schema``.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_version (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL UNIQUE,
    scenario TEXT NOT NULL,
    kind TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    git_sha TEXT NOT NULL,
    started_at REAL NOT NULL,
    tags TEXT NOT NULL DEFAULT '[]',
    meta TEXT NOT NULL DEFAULT '{}',
    num_records INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_runs_scenario ON runs (scenario, seq);
CREATE INDEX IF NOT EXISTS idx_runs_sha ON runs (git_sha, seq);
CREATE TABLE IF NOT EXISTS records (
    run_id TEXT NOT NULL,
    idx INTEGER NOT NULL,
    label TEXT NOT NULL,
    params TEXT NOT NULL,
    metrics TEXT NOT NULL,
    PRIMARY KEY (run_id, idx)
);
"""

_RUN_COLUMNS = (
    "seq, run_id, scenario, kind, config_hash, git_sha, started_at, "
    "tags, meta, num_records"
)


@dataclass
class StoredRun:
    """One recorded execution (the ``runs`` row, records fetched separately)."""

    run_id: str
    scenario: str
    kind: str
    config_hash: str
    git_sha: str
    started_at: float
    seq: int = 0
    tags: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    num_records: int = 0

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "StoredRun":
        return cls(
            run_id=row["run_id"],
            scenario=row["scenario"],
            kind=row["kind"],
            config_hash=row["config_hash"],
            git_sha=row["git_sha"],
            started_at=row["started_at"],
            seq=row["seq"],
            tags=json.loads(row["tags"]),
            meta=json.loads(row["meta"]),
            num_records=row["num_records"],
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the history endpoints' run view)."""
        return {
            "run_id": self.run_id,
            "scenario": self.scenario,
            "kind": self.kind,
            "config_hash": self.config_hash,
            "git_sha": self.git_sha,
            "started_at": self.started_at,
            "tags": list(self.tags),
            "num_records": self.num_records,
        }


class ResultsStore:
    """SQLite-backed persistent run store (see module docstring).

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an ephemeral store.
    clock:
        Injectable time source used when an append has no explicit
        provenance (default :func:`time.time`).
    """

    def __init__(self, path: str = ":memory:", *, clock=time.time):
        self.path = path
        self._clock = clock
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._ensure_schema()

    def _ensure_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute("SELECT version FROM schema_version").fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO schema_version (version) VALUES (?)", (SCHEMA_VERSION,)
                )
            elif row["version"] != SCHEMA_VERSION:
                raise RuntimeError(
                    f"results store {self.path!r} has schema version "
                    f"{row['version']}, this build supports {SCHEMA_VERSION}"
                )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- appends ------------------------------------------------------------- #
    def append(
        self,
        scenario: str,
        kind: str,
        records: Sequence[Mapping[str, Any]],
        *,
        meta: Optional[Mapping[str, Any]] = None,
        tags: Sequence[str] = (),
        provenance: Optional[Provenance] = None,
    ) -> StoredRun:
        """Persist one run and its records; returns the stored row.

        ``records`` are JSON-ready dicts in the
        :class:`~repro.scenarios.runner.ScenarioRecord` shape
        (``{"params", "label", "metrics"}``).  When ``provenance`` is
        omitted, one is built from ``meta`` — callers that already computed
        identity (:func:`repro.api.run`) pass theirs through so the store
        key matches the JSON artifact and the service job record.
        """
        meta = dict(meta or {})
        if provenance is None:
            stored = meta.get("provenance")
            provenance = (
                Provenance.from_dict(stored)
                if stored
                else build_provenance(
                    {k: v for k, v in meta.items() if k != "provenance"},
                    clock=self._clock,
                )
            )
        meta.setdefault("provenance", provenance.to_dict())
        rows = [
            (
                provenance.run_id,
                i,
                str(record.get("label", "")),
                json.dumps(dict(record.get("params", {}))),
                json.dumps(dict(record.get("metrics", {}))),
            )
            for i, record in enumerate(records)
        ]
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO runs (run_id, scenario, kind, config_hash, "
                    "git_sha, started_at, tags, meta, num_records) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        provenance.run_id,
                        scenario,
                        kind,
                        provenance.config_hash,
                        provenance.git_sha,
                        provenance.started_at,
                        json.dumps(list(tags)),
                        json.dumps(meta),
                        len(rows),
                    ),
                )
                self._conn.executemany(
                    "INSERT INTO records (run_id, idx, label, params, metrics) "
                    "VALUES (?, ?, ?, ?, ?)",
                    rows,
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return self.get_run(provenance.run_id)

    # -- lookups -------------------------------------------------------------- #
    def get_run(self, run_id: str) -> StoredRun:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no such run {run_id!r}")
        return StoredRun.from_row(row)

    def runs(
        self,
        *,
        scenario: Optional[str] = None,
        kind: Optional[str] = None,
        tag: Optional[str] = None,
        git_sha: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        marker: Optional[str] = None,
        limit: int = 50,
    ) -> Tuple[List[StoredRun], Optional[str]]:
        """Marker-paginated run listing, oldest first.

        ``marker`` is the ``run_id`` of the previous page's last run (the
        job store's Trove convention); returns ``(runs, next_marker)`` with
        ``next_marker`` ``None`` on the final page.  ``since`` / ``until``
        bound ``started_at`` (POSIX timestamps, inclusive).
        """
        clauses, params = ["1=1"], []  # type: ignore[var-annotated]
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if tag is not None:
            # tags is a JSON array of strings; the quoted-substring match is
            # exact because json.dumps always quotes array elements.
            clauses.append("tags LIKE ?")
            params.append(f'%{json.dumps(str(tag))}%')
        if git_sha is not None:
            clauses.append("git_sha = ?")
            params.append(git_sha)
        if since is not None:
            clauses.append("started_at >= ?")
            params.append(float(since))
        if until is not None:
            clauses.append("started_at <= ?")
            params.append(float(until))
        if marker is not None:
            clauses.append("seq > ?")
            params.append(self.get_run(marker).seq)
        limit = max(1, int(limit))
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE {' AND '.join(clauses)} "
                f"ORDER BY seq LIMIT ?",
                (*params, limit + 1),
            ).fetchall()
        runs = [StoredRun.from_row(row) for row in rows[:limit]]
        next_marker = runs[-1].run_id if len(rows) > limit else None
        return runs, next_marker

    def scenarios(self) -> List[str]:
        """Distinct scenario names with at least one recorded run."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT scenario FROM runs ORDER BY scenario"
            ).fetchall()
        return [row["scenario"] for row in rows]

    def get_records(
        self, run_id: str, *, offset: int = 0, limit: int = 200
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Offset/limit page through one run's records; ``(records, total)``."""
        run = self.get_run(run_id)
        offset = max(0, int(offset))
        limit = max(1, int(limit))
        with self._lock:
            rows = self._conn.execute(
                "SELECT label, params, metrics FROM records WHERE run_id = ? "
                "ORDER BY idx LIMIT ? OFFSET ?",
                (run_id, limit, offset),
            ).fetchall()
        records = [
            {
                "label": row["label"],
                "params": json.loads(row["params"]),
                "metrics": json.loads(row["metrics"]),
            }
            for row in rows
        ]
        return records, run.num_records

    # -- trend queries --------------------------------------------------------- #
    def metric_names(self, scenario: str) -> List[str]:
        """Metric names observed across ``scenario``'s recorded runs."""
        names = set()
        for run, records in self._iter_runs_with_records(scenario, last=None):
            for record in records:
                names.update(record["metrics"])
        return sorted(names)

    def trend(
        self,
        scenario: str,
        metric: str,
        *,
        where: Optional[Mapping[str, Any]] = None,
        last: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """One metric's trend series across a scenario's runs, oldest first.

        Each point is ``{"run_id", "git_sha", "config_hash", "started_at",
        "value"}``.  ``where`` restricts to records whose params contain the
        given subset (e.g. ``{"delta": 0.3}`` picks one grid point of a
        sweep); when several records of a run match, their mean is the
        point.  ``last`` keeps only the most recent K points.
        """
        points: List[Dict[str, Any]] = []
        for run, records in self._iter_runs_with_records(scenario, last=None):
            values = [
                float(record["metrics"][metric])
                for record in records
                if metric in record["metrics"]
                and (
                    where is None
                    or all(record["params"].get(k) == v for k, v in where.items())
                )
            ]
            if not values:
                continue
            points.append(
                {
                    "run_id": run.run_id,
                    "git_sha": run.git_sha,
                    "config_hash": run.config_hash,
                    "started_at": run.started_at,
                    "value": sum(values) / len(values),
                }
            )
        if last is not None:
            points = points[-max(1, int(last)):]
        return points

    def _iter_runs_with_records(
        self, scenario: str, *, last: Optional[int]
    ) -> List[Tuple[StoredRun, List[Dict[str, Any]]]]:
        out: List[Tuple[StoredRun, List[Dict[str, Any]]]] = []
        marker: Optional[str] = None
        while True:
            runs, marker = self.runs(scenario=scenario, marker=marker, limit=200)
            for run in runs:
                records, _ = self.get_records(run.run_id, limit=max(run.num_records, 1))
                out.append((run, records))
            if marker is None:
                break
        if last is not None:
            out = out[-max(1, int(last)):]
        return out


def open_store(store: Union[str, ResultsStore]) -> Tuple[ResultsStore, bool]:
    """Normalize a path-or-store argument; returns ``(store, owns_it)``.

    ``owns_it`` tells the caller whether it opened (and should close) the
    connection — the ``record_to=`` sinks accept either form.
    """
    if isinstance(store, ResultsStore):
        return store, False
    return ResultsStore(str(store)), True
