"""`repro.results`: the persistent run store and its regression tracking.

PRs 5–7 left the repo's perf trajectory scattered across write-once JSON
artifacts and a job queue that forgets finished results.  This subsystem
turns that into a queryable history:

* :class:`~repro.results.store.ResultsStore` — a schema-versioned SQLite
  store of every :class:`~repro.scenarios.runner.ScenarioRecord` and
  benchmark row, keyed by ``(scenario, config_hash, git_sha, started_at)``;
* :mod:`~repro.results.provenance` — run identity (``run_id``,
  ``config_hash``, ``git_sha``, ``started_at``) computed once and stamped
  by :func:`repro.api.run` onto every result;
* :mod:`~repro.results.regression` — the rolling-baseline detector
  (median-of-last-K with an IQR noise band; only ≥2 consecutive
  out-of-band runs confirm a regression);
* :mod:`~repro.results.compare` — the unified benchmark comparison behind
  ``repro bench compare`` (two-point diffs and store-backed history).

Append paths: ``record_to=`` on :func:`repro.api.run` and
:func:`repro.scenarios.runner.run_scenario`, the service task manager
(default on under ``repro serve``), and ``repro bench record`` for the
benchmark artifacts.  Query surfaces: ``repro scenario history``,
``GET /v1/history`` on the experiment service, and this module's
:func:`history_payload` — the one builder both of those render, which is
what makes their trend series identical by construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.results.compare import (
    BENCH_KINDS,
    compare,
    compare_store,
    record_bench_file,
)
from repro.results.provenance import (
    Provenance,
    build_provenance,
    config_hash,
    current_git_sha,
    new_run_id,
)
from repro.results.regression import (
    SeriesAssessment,
    assess_series,
    assess_trend,
)
from repro.results.store import (
    SCHEMA_VERSION,
    ResultsStore,
    StoredRun,
    open_store,
)

__all__ = [
    "BENCH_KINDS",
    "Provenance",
    "ResultsStore",
    "SCHEMA_VERSION",
    "SeriesAssessment",
    "StoredRun",
    "assess_series",
    "assess_trend",
    "build_provenance",
    "compare",
    "compare_store",
    "config_hash",
    "current_git_sha",
    "history_payload",
    "new_run_id",
    "open_store",
    "record_bench_file",
    "record_report",
    "record_run_payload",
]

#: Meta keys excluded from a report's config hash: they vary run to run even
#: when the configuration is identical.
_VOLATILE_META_KEYS = frozenset({"sweep_wall_seconds", "provenance"})


def record_run_payload(
    store: Union[str, ResultsStore],
    *,
    scenario: str,
    kind: str,
    records: Sequence[Mapping[str, Any]],
    meta: Optional[Mapping[str, Any]] = None,
    tags: Sequence[str] = (),
    provenance: Optional[Provenance] = None,
) -> StoredRun:
    """Append one run's JSON-ready records to ``store`` (path or instance)."""
    handle, owns = open_store(store)
    try:
        return handle.append(
            scenario, kind, records, meta=meta, tags=tags, provenance=provenance
        )
    finally:
        if owns:
            handle.close()


def record_report(store: Union[str, ResultsStore], report) -> StoredRun:
    """Append a :class:`~repro.scenarios.runner.ScenarioReport` to the store.

    The direct-library append path: ``run_scenario(..., record_to=...)``
    routes here.  Provenance is built from the report's *configuration*
    meta (volatile wall-clock keys excluded), so re-running the same
    scenario hashes identically.
    """
    stable_meta = {
        "name": report.name,
        "kind": report.kind,
        **{k: v for k, v in report.meta.items() if k not in _VOLATILE_META_KEYS},
    }
    provenance = build_provenance(stable_meta)
    return record_run_payload(
        store,
        scenario=report.name,
        kind=report.kind,
        records=[record.to_dict() for record in report.records],
        meta={**dict(report.meta), "title": report.title},
        tags=tuple(report.meta.get("tags", ())),
        provenance=provenance,
    )


def history_payload(
    store: Union[str, ResultsStore],
    scenario: str,
    *,
    metrics: Optional[Sequence[str]] = None,
    where: Optional[Mapping[str, Any]] = None,
    last: Optional[int] = None,
) -> Dict[str, Any]:
    """The trend-series view of one scenario's recorded history.

    This single builder backs both ``repro scenario history --json`` and the
    service's ``GET /v1/history/<scenario>`` endpoint, so the two surfaces
    return the same series for the same store by construction.  ``metrics``
    defaults to every metric observed; ``where`` restricts sweep records to
    one grid point; ``last`` keeps the most recent K runs per series.
    """
    handle, owns = open_store(store)
    try:
        names: List[str] = (
            list(metrics) if metrics else handle.metric_names(scenario)
        )
        series = {
            name: handle.trend(
                scenario, name, where=dict(where) if where else None, last=last
            )
            for name in names
        }
        return {
            "scenario": scenario,
            "metrics": names,
            "series": {name: points for name, points in series.items() if points},
        }
    finally:
        if owns:
            handle.close()
