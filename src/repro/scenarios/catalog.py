"""Built-in scenarios: the paper's figures plus the large-N sweep suite.

Importing this module populates :data:`repro.scenarios.registry.REGISTRY`
with every scenario the benchmarks, examples and CLI reference by name.

Tag conventions
---------------
``figure``
    Regenerates one of the paper's figures/tables (the ``benchmarks/``
    suite runs these per-PR at reduced scale).
``example``
    Referenced by scripts under ``examples/``.
``delta-sweep``
    Sweeps the SelSync δ threshold.
``paper-scale``
    The large-N (64–256) sweeps that only became affordable with the
    batched engine; the nightly ``--run-scenarios`` job runs and archives
    these (see ``benchmarks/scenario_suite.py``).
``pool``
    Runs through the multiprocessing replica pool.
``faults``
    Fault-injection reliability scenarios (worker crashes, checkpoint
    rejoins, straggler bursts) with deterministic-replay and
    loss-continuity gates; the nightly fault job runs these.  Deliberately
    **not** tagged ``paper-scale`` — they follow different contracts than
    the δ-sweep suite.
"""

from __future__ import annotations

from repro.faults.schedule import crash, rejoin, straggler_burst
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    ComparisonScenario,
    FaultScenario,
    SweepScenario,
    ThroughputScenario,
)

#: The Fig. 6 grid: δ = 0 is BSP, the 1e9 sentinel exceeds every observed
#: Δ(gᵢ) and degenerates to pure local SGD.
FIG6_DELTAS = (0.0, 0.05, 0.1, 0.25, 0.5, 1e9)

#: Grids for the large-N exact-endpoint sweeps, spread so intermediate δ
#: values land strictly between the BSP and local-SGD extremes under the
#: gradient-aggregation / no-forced-first-sync configuration they run in.
DEEP_MLP_DELTAS = (0.0, 0.1, 1.0, 2.0, 1e9)
TRANSFORMER_DELTAS = (0.0, 0.1, 0.25, 0.5, 1e9)

#: Cluster sizes of the paper-scale δ-sweeps (mirrors the nightly
#: ``perf_smoke.py --run-scale`` worker grid above N=8).
PAPER_SCALE_WORKERS = (64, 128, 256)

#: Exact-endpoint configuration: gradient aggregation without a forced
#: first sync is the regime where SelSync δ=0 reproduces BSPTrainer and
#: δ→∞ reproduces a never-syncing LocalSGDTrainer bit-for-bit.
EXACT_ENDPOINT_FIXED = {"aggregation": "grad", "sync_on_first_step": False}


def _table1_methods(full: bool = False):
    """Table I's method grid (the full paper grid under ``full=True``)."""
    methods = {
        "bsp": ("bsp", {}),
        "fedavg(1,0.25)": ("fedavg", {"participation": 1.0, "sync_factor": 0.25}),
        "fedavg(0.5,0.25)": ("fedavg", {"participation": 0.5, "sync_factor": 0.25}),
        "ssp(s=100)": ("ssp", {"staleness": 100}),
        "selsync(0.3)": ("selsync", {"delta": 0.3}),
        "selsync(0.5)": ("selsync", {"delta": 0.5}),
    }
    if full:
        methods.update(
            {
                "fedavg(1,0.125)": ("fedavg", {"participation": 1.0, "sync_factor": 0.125}),
                "fedavg(0.5,0.125)": ("fedavg", {"participation": 0.5, "sync_factor": 0.125}),
                "ssp(s=200)": ("ssp", {"staleness": 200}),
            }
        )
    return methods


# --------------------------------------------------------------------------- #
# figure scenarios (benchmarks/ run these, overriding iterations per scale)
# --------------------------------------------------------------------------- #
register_scenario(
    SweepScenario(
        name="fig6-delta-sweep",
        title="Fig. 6 — δ sweep between fully synchronous (δ=0) and fully local training",
        workload="resnet101",
        algorithm="selsync",
        grid={"delta": FIG6_DELTAS},
        num_workers=4,
        iterations=200,
        tags=("figure", "delta-sweep"),
    )
)

register_scenario(
    SweepScenario(
        name="fig6-transformer-delta-sweep",
        title="Fig. 6 (transformer) — δ sweep on the batched transformer analog",
        workload="transformer",
        algorithm="selsync",
        grid={"delta": FIG6_DELTAS},
        num_workers=8,
        iterations=80,
        batch_size=8,
        tags=("figure", "delta-sweep", "transformer"),
    )
)

register_scenario(
    ThroughputScenario(
        name="fig1a-throughput",
        title="Fig. 1a — relative throughput vs cluster size (PS, 5 Gbps)",
        workloads=("resnet101", "vgg11", "alexnet", "transformer"),
        worker_counts=(1, 2, 4, 8, 16),
        topology="ps",
        tags=("figure",),
    )
)

register_scenario(
    ComparisonScenario(
        name="table1-comparison",
        title="Table I — BSP vs FedAvg vs SSP vs SelSync",
        methods=_table1_methods(),
        workloads=("resnet101",),
        num_workers=4,
        iterations=160,
        tags=("figure", "table1"),
    )
)

register_scenario(
    ComparisonScenario(
        name="table1-comparison-full",
        title="Table I — BSP vs FedAvg vs SSP vs SelSync (full method grid)",
        methods=_table1_methods(full=True),
        workloads=("resnet101", "vgg11", "alexnet", "transformer"),
        num_workers=16,
        iterations=400,
        tags=("figure", "table1", "full-scale"),
    )
)

register_scenario(
    ComparisonScenario(
        name="table1-transformer",
        title="Table I (transformer) — method grid on the language-model workload",
        methods=_table1_methods(),
        workloads=("transformer",),
        num_workers=8,
        iterations=160,
        tags=("figure", "table1", "transformer"),
    )
)


# --------------------------------------------------------------------------- #
# example scenarios (examples/ look these up by name)
# --------------------------------------------------------------------------- #
for _workload in ("resnet101", "vgg11", "alexnet", "transformer", "deep_mlp"):
    register_scenario(
        SweepScenario(
            name=f"delta-sweep-{_workload}",
            title=f"δ sweep — {_workload}",
            workload=_workload,
            algorithm="selsync",
            grid={"delta": (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 1e9)},
            num_workers=4,
            iterations=120,
            tags=("example", "delta-sweep"),
        )
    )

register_scenario(
    ComparisonScenario(
        name="quickstart",
        title="SelSync quickstart — BSP vs SelSync(δ=0.3)",
        methods={"bsp": ("bsp", {}), "selsync": ("selsync", {"delta": 0.3})},
        workloads=("resnet101",),
        num_workers=4,
        iterations=150,
        eval_every=25,
        use_convergence=False,
        tags=("example",),
    )
)


# --------------------------------------------------------------------------- #
# paper-scale δ-sweeps: the large-N suite the engine PRs made affordable.
# Exact-endpoint configuration (gradient aggregation, no forced first sync)
# so the runner can pin δ=0 to BSPTrainer and δ=max to LocalSGDTrainer.
# --------------------------------------------------------------------------- #
for _n in PAPER_SCALE_WORKERS:
    register_scenario(
        SweepScenario(
            name=f"deep-mlp-delta-n{_n}",
            title=f"δ sweep — deep-MLP analog, N={_n} (exact BSP/local-SGD endpoints)",
            workload="deep_mlp",
            algorithm="selsync",
            grid={"delta": DEEP_MLP_DELTAS},
            fixed=dict(EXACT_ENDPOINT_FIXED),
            num_workers=_n,
            iterations=24,
            batch_size=4,
            verify_endpoints=True,
            tags=("paper-scale", "delta-sweep", "nightly"),
        )
    )
    register_scenario(
        SweepScenario(
            name=f"transformer-delta-n{_n}",
            title=f"δ sweep — transformer analog, N={_n} (exact BSP/local-SGD endpoints)",
            workload="transformer",
            algorithm="selsync",
            grid={"delta": TRANSFORMER_DELTAS},
            fixed=dict(EXACT_ENDPOINT_FIXED),
            num_workers=_n,
            iterations=12,
            batch_size=2,
            verify_endpoints=True,
            tags=("paper-scale", "delta-sweep", "nightly", "transformer"),
        )
    )

# The pooled variant rides the shared-memory replica pool: bit-identical
# float64 trajectories mean the exact-endpoint contract must survive the
# process boundary too.
register_scenario(
    SweepScenario(
        name="deep-mlp-delta-n64-pooled",
        title="δ sweep — deep-MLP analog, N=64, replica pool (2 processes)",
        workload="deep_mlp",
        algorithm="selsync",
        grid={"delta": (0.0, 1.0, 1e9)},
        fixed=dict(EXACT_ENDPOINT_FIXED),
        num_workers=64,
        iterations=12,
        batch_size=4,
        pool_workers=2,
        verify_endpoints=True,
        tags=("paper-scale", "delta-sweep", "pool"),
    )
)


# --------------------------------------------------------------------------- #
# fault-injection reliability scenarios (repro.faults): each runs twice with
# the same fault seed and must replay byte-identically; crashes must not
# break loss continuity.  See the "faults" tag convention above.
# --------------------------------------------------------------------------- #
register_scenario(
    FaultScenario(
        name="fault-replay-deep-mlp",
        title="Fault replay — SelSync survives a crash, a straggler burst and "
        "a checkpoint rejoin (deep-MLP analog)",
        workload="deep_mlp",
        algorithm="selsync",
        events=(
            crash(2, 8),
            straggler_burst(1, 12, duration=6, slowdown=3.0),
            rejoin(2, 24),
            crash(0, 40),
            rejoin(0, 56),
        ),
        checkpoint_every=8,
        num_workers=4,
        iterations=64,
        tags=("faults", "nightly"),
    )
)

register_scenario(
    FaultScenario(
        name="fault-random-deep-mlp-bsp",
        title="Fault process — BSP under a seeded crash/straggler process "
        "(deep-MLP analog)",
        workload="deep_mlp",
        algorithm="bsp",
        fault_seed=7,
        failure_rate=0.04,
        straggler_fraction=0.1,
        mttr=6,
        checkpoint_every=8,
        num_workers=4,
        iterations=64,
        tags=("faults", "nightly"),
    )
)

register_scenario(
    FaultScenario(
        name="fault-replay-transformer",
        title="Fault replay — SelSync crash/rejoin on the transformer analog",
        workload="transformer",
        algorithm="selsync",
        events=(crash(3, 6), rejoin(3, 18)),
        checkpoint_every=6,
        num_workers=4,
        iterations=32,
        tags=("faults", "nightly", "transformer"),
    )
)
