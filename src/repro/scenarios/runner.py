"""The single executor for registered scenarios.

:func:`run_scenario` takes a scenario (or a registry name), executes it
through :func:`repro.harness.experiment.run_experiment` (training kinds) or
the analytic cost model (throughput kind), and returns a
:class:`ScenarioReport`: structured per-run records that serialize to JSON
for artifact tracking, the raw :class:`~repro.algorithms.base.TrainingResult`
objects for assertions, and ready-made :mod:`repro.harness.reporting` tables.

δ-sweep scenarios with ``verify_endpoints=True`` additionally run the
existing :class:`~repro.algorithms.bsp.BSPTrainer` and a never-syncing
:class:`~repro.algorithms.localsgd.LocalSGDTrainer` as *anchors* and record
whether the sweep's δ=0 and δ=max runs reproduce them exactly — final loss,
final metric and the full evaluation history.  This pins the registry's
large-N sweeps to the trainers the unit suite already trusts.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro import telemetry
from repro.algorithms.base import TrainingResult
from repro.harness.reporting import format_table, results_to_rows, table1_headers
from repro.harness.sweep import grid_sweep, run_sweep_stacked
from repro.metrics.convergence import ConvergenceDetector
from repro.scenarios.registry import Scenario, get_scenario
from repro.scenarios.spec import (
    ComparisonScenario,
    FaultScenario,
    ScenarioError,
    SweepScenario,
    ThroughputScenario,
)

__all__ = [
    "RunCancelled",
    "ScenarioRecord",
    "ScenarioReport",
    "result_metrics",
    "run_scenario",
]


class RunCancelled(Exception):
    """A scenario run was cancelled cooperatively between runs.

    Raised by :func:`run_scenario` when the ``cancel_check`` callback
    returns ``True`` at a checkpoint (before each grid point, comparison
    method or endpoint anchor).  The experiment service's task manager maps
    this to the job lifecycle's CANCELLED state."""


def _check_cancelled(cancel_check: Optional[Any]) -> None:
    if cancel_check is not None and cancel_check():
        raise RunCancelled("scenario run cancelled by cancel_check")


@dataclass
class ScenarioRecord:
    """One run (or one analytic point) of a scenario, as plain data.

    ``phases`` is the opt-in per-phase wall-clock breakdown (phase name →
    seconds) captured around this run when :mod:`repro.telemetry` tracing is
    active; ``None`` — the default when telemetry is off — keeps the record
    shape byte-identical to pre-telemetry artifacts.
    """

    params: Dict[str, Any]
    label: str
    metrics: Dict[str, float]
    phases: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        payload: Dict[str, Any] = {
            "params": dict(self.params),
            "label": self.label,
            "metrics": dict(self.metrics),
        }
        if self.phases is not None:
            payload["phases"] = dict(self.phases)
        return payload


@dataclass
class ScenarioReport:
    """Everything one scenario execution produced.

    ``records`` are JSON-serializable summaries (one per run);
    ``results`` keeps the raw :class:`~repro.algorithms.base.TrainingResult`
    objects keyed like the records for exact assertions; ``endpoints`` holds
    the anchor records and parity verdicts of ``verify_endpoints`` sweeps.
    """

    name: str
    title: str
    kind: str
    meta: Dict[str, Any] = field(default_factory=dict)
    records: List[ScenarioRecord] = field(default_factory=list)
    results: Dict[str, TrainingResult] = field(default_factory=dict)
    endpoints: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (drops the raw ``results`` objects)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "meta": dict(self.meta),
            "records": [record.to_dict() for record in self.records],
        }
        if self.endpoints:
            payload["endpoints"] = self.endpoints
        return payload

    def series(self, param: str, metric: str) -> Dict[Any, float]:
        """One ``{param value -> metric}`` series across the records."""
        return {
            record.params[param]: record.metrics[metric]
            for record in self.records
            if param in record.params and metric in record.metrics
        }

    def table(self) -> str:
        """Human-readable report table(s), one :func:`format_table` per kind."""
        if self.kind == "comparison":
            return self._comparison_table()
        if self.kind == "throughput":
            return self._throughput_table()
        return self._sweep_table()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _format_param(name: str, value: Any) -> Any:
        # The 1e9 δ sentinel means "beyond any observed Δ(gᵢ)" — print it as
        # the local-SGD extreme it represents, like Fig. 6 in the paper.
        if name == "delta" and isinstance(value, float) and value >= 1e9:
            return "∞ (local SGD)"
        return value

    def _sweep_table(self) -> str:
        param_names = sorted({name for r in self.records for name in r.params})
        metric_names = ["lssr", "best_metric", "final_loss", "sim_time_seconds", "wall_seconds"]
        rows = []
        for record in self.records:
            cells: List[Any] = [
                self._format_param(name, record.params.get(name, "-"))
                for name in param_names
            ]
            for metric in metric_names:
                value = record.metrics.get(metric)
                cells.append("-" if value is None else round(value, 4))
            rows.append(cells)
        title = self.title
        sweep_wall = self.meta.get("sweep_wall_seconds")
        if sweep_wall is not None:
            title = f"{title} (sweep wall {sweep_wall:.1f}s)"
        return format_table(param_names + metric_names, rows, title=title)

    def _comparison_table(self) -> str:
        tables = []
        for workload in self.meta.get("workloads", []):
            results = {
                label: self.results[f"{workload}/{label}"]
                for label in self.meta.get("methods", [])
                if f"{workload}/{label}" in self.results
            }
            if not results:
                continue
            rows = results_to_rows(results, baseline_key=self.meta["baseline"])
            tables.append(
                format_table(table1_headers(), rows, title=f"{self.title} — {workload}")
            )
        return "\n\n".join(tables)

    def _throughput_table(self) -> str:
        workloads = list(self.meta.get("workloads", []))
        curves: Dict[str, Dict[int, float]] = {name: {} for name in workloads}
        for record in self.records:
            curves[record.params["workload"]][record.params["workers"]] = record.metrics[
                "relative_throughput"
            ]
        rows = [
            [n] + [round(curves[name][n], 2) for name in workloads]
            for n in self.meta.get("worker_counts", [])
        ]
        return format_table(["workers"] + workloads, rows, title=self.title)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def result_metrics(result: TrainingResult) -> Dict[str, float]:
    """The serializable per-run summary shared by every training record.

    Public because the :mod:`repro.api` façade builds single-run records in
    exactly this shape, so local and service-submitted runs serialize
    identically."""
    metrics = {
        "iterations": float(result.iterations),
        "lssr": result.lssr,
        "best_metric": result.best_metric,
        "final_metric": result.final_metric,
        "final_loss": result.final_loss,
        "sim_time_seconds": result.sim_time_seconds,
        "communication_bytes": result.communication_bytes,
    }
    for key, value in result.extras.items():
        metrics.setdefault(key, float(value))
    return metrics


def _exact_match(result: TrainingResult, anchor: TrainingResult) -> bool:
    """Bit-exact trajectory equality: final numbers plus every eval point.

    Simulated time is excluded on purpose — SelSync charges the per-step
    flags all-gather that BSP / local SGD never pay, so clocks differ even
    when the parameter trajectories are identical.
    """
    if result.final_loss != anchor.final_loss:
        return False
    if result.final_metric != anchor.final_metric:
        return False
    if len(result.history) != len(anchor.history):
        return False
    return all(
        a.step == b.step and a.metric == b.metric and a.loss == b.loss
        for a, b in zip(result.history, anchor.history)
    )


def _run_sweep(
    scenario: SweepScenario,
    iterations: int,
    num_workers: int,
    seed: int,
    cancel_check=None,
) -> ScenarioReport:
    from repro.harness.experiment import run_experiment

    eval_every = scenario.resolved_eval_every(iterations)
    common = dict(
        num_workers=num_workers,
        iterations=iterations,
        seed=seed,
        eval_every=eval_every,
        batch_size=scenario.batch_size,
        dtype=scenario.dtype,
        transport_dtype=scenario.transport_dtype,
        pool_workers=scenario.pool_workers,
        pool_start_method=scenario.pool_start_method,
    )
    report = ScenarioReport(
        name=scenario.name,
        title=scenario.title,
        kind=scenario.kind,
        meta={
            "workload": scenario.workload,
            "algorithm": scenario.algorithm,
            "num_workers": num_workers,
            "iterations": iterations,
            "seed": seed,
            "eval_every": eval_every,
            "grid": {key: list(values) for key, values in scenario.grid.items()},
            "fixed": dict(scenario.fixed),
            "dtype": scenario.dtype,
            "transport_dtype": scenario.transport_dtype,
            "pool_workers": scenario.pool_workers,
            "stacked": scenario.stacked,
            "max_stacked_rows": scenario.max_stacked_rows,
            "tags": list(scenario.tags),
        },
    )

    run_walls: List[float] = []
    run_phases: List[Optional[Dict[str, float]]] = []
    sweep_phase_start = telemetry.phase_snapshot()
    sweep_start = time.perf_counter()
    if scenario.stacked:
        # One fused computation has no between-run checkpoint; check once.
        _check_cancelled(cancel_check)
        sweep = run_sweep_stacked(
            scenario.workload,
            scenario.algorithm,
            scenario.grid,
            scenario.fixed,
            num_workers=num_workers,
            iterations=iterations,
            seed=seed,
            eval_every=eval_every,
            batch_size=scenario.batch_size,
            dtype=scenario.dtype,
            transport_dtype=scenario.transport_dtype,
            max_stacked_rows=scenario.max_stacked_rows,
        )
        # One fused computation covered every grid point; attribute an equal
        # share of the sweep's wall-clock to each run's record.  Phase time
        # is likewise shared, so it lives in meta["phases"] only.
        run_walls = [(time.perf_counter() - sweep_start) / len(sweep.runs)] * len(
            sweep.runs
        )
        run_phases = [None] * len(sweep.runs)
    else:

        def one_run(**params):
            _check_cancelled(cancel_check)
            start = time.perf_counter()
            phase_start = telemetry.phase_snapshot()
            out = run_experiment(
                scenario.workload,
                scenario.algorithm,
                **common,
                **scenario.fixed,
                **params,
            )
            run_phases.append(telemetry.phase_delta(phase_start) or None)
            run_walls.append(time.perf_counter() - start)
            return out

        sweep = grid_sweep(one_run, scenario.grid)
    report.meta["sweep_wall_seconds"] = time.perf_counter() - sweep_start
    sweep_phases = telemetry.phase_delta(sweep_phase_start)
    if sweep_phases:
        report.meta["phases"] = sweep_phases

    for run, wall, phases in zip(sweep.runs, run_walls, run_phases):
        out = run["output"]
        key = "/".join(f"{k}={v}" for k, v in run["params"].items())
        report.results[key] = out.result
        metrics = result_metrics(out.result)
        metrics["wall_seconds"] = wall
        report.records.append(
            ScenarioRecord(
                params=dict(run["params"]),
                label=out.algorithm,
                metrics=metrics,
                phases=phases,
            )
        )

    if scenario.verify_endpoints:
        report.endpoints = _verify_delta_endpoints(scenario, report, common, cancel_check)
    return report


def _verify_delta_endpoints(
    scenario: SweepScenario,
    report: ScenarioReport,
    common: Dict[str, Any],
    cancel_check=None,
) -> Dict[str, Any]:
    """Anchor the δ-sweep's extremes on the existing BSP / local-SGD trainers."""
    from repro.harness.experiment import run_experiment

    deltas = list(scenario.grid["delta"])
    lo, hi = min(deltas), max(deltas)
    _check_cancelled(cancel_check)
    bsp_start = time.perf_counter()
    bsp = run_experiment(scenario.workload, "bsp", **common)
    bsp_wall = time.perf_counter() - bsp_start
    _check_cancelled(cancel_check)
    local_start = time.perf_counter()
    local = run_experiment(
        scenario.workload,
        "local_sgd",
        sync_period=common["iterations"] + 1,
        **common,
    )
    local_wall = time.perf_counter() - local_start
    delta_lo = report.results[f"delta={lo}"]
    delta_hi = report.results[f"delta={hi}"]
    bsp_metrics = result_metrics(bsp.result)
    bsp_metrics["wall_seconds"] = bsp_wall
    local_metrics = result_metrics(local.result)
    local_metrics["wall_seconds"] = local_wall
    endpoints = {
        "bsp": {
            "delta": lo,
            "record": ScenarioRecord(
                params={"anchor": "bsp"}, label=bsp.algorithm,
                metrics=bsp_metrics,
            ).to_dict(),
            "matches_sweep_endpoint": _exact_match(delta_lo, bsp.result),
        },
        "local_sgd": {
            "delta": hi,
            "record": ScenarioRecord(
                params={"anchor": "local_sgd"}, label=local.algorithm,
                metrics=local_metrics,
            ).to_dict(),
            "matches_sweep_endpoint": _exact_match(delta_hi, local.result),
        },
    }
    report.results["anchor/bsp"] = bsp.result
    report.results["anchor/local_sgd"] = local.result
    return endpoints


def _run_comparison(
    scenario: ComparisonScenario,
    iterations: int,
    num_workers: int,
    seed: int,
    cancel_check=None,
) -> ScenarioReport:
    from repro.harness.experiment import build_workload, run_experiment

    eval_every = scenario.resolved_eval_every(iterations)
    report = ScenarioReport(
        name=scenario.name,
        title=scenario.title,
        kind=scenario.kind,
        meta={
            "workloads": list(scenario.workloads),
            "methods": list(scenario.methods),
            "baseline": scenario.baseline,
            "num_workers": num_workers,
            "iterations": iterations,
            "seed": seed,
            "eval_every": eval_every,
            "tags": list(scenario.tags),
        },
    )
    for workload in scenario.workloads:
        higher_is_better = build_workload(workload).task != "language_modeling"
        for label, (algorithm, kwargs) in scenario.methods.items():
            _check_cancelled(cancel_check)
            convergence = None
            if scenario.use_convergence:
                convergence = ConvergenceDetector(
                    higher_is_better=higher_is_better,
                    patience=scenario.convergence_patience,
                    min_delta=scenario.convergence_min_delta,
                )
            phase_start = telemetry.phase_snapshot()
            out = run_experiment(
                workload,
                algorithm,
                num_workers=num_workers,
                iterations=iterations,
                seed=seed,
                eval_every=eval_every,
                convergence=convergence,
                dtype=scenario.dtype,
                transport_dtype=scenario.transport_dtype,
                pool_workers=scenario.pool_workers,
                pool_start_method=scenario.pool_start_method,
                **kwargs,
            )
            report.results[f"{workload}/{label}"] = out.result
            report.records.append(
                ScenarioRecord(
                    params={"workload": workload, "method": label},
                    label=out.algorithm,
                    metrics=result_metrics(out.result),
                    phases=telemetry.phase_delta(phase_start) or None,
                )
            )
    return report


def _run_fault(
    scenario: FaultScenario,
    iterations: int,
    num_workers: int,
    seed: int,
    cancel_check=None,
) -> ScenarioReport:
    """Execute a fault scenario twice and enforce its reliability gates.

    Records deliberately omit wall-clock timings — the deterministic-replay
    gate compares the two runs' serialized records byte for byte, and only
    seeded quantities (losses, metrics, simulated seconds, byte counts) are
    replayable.
    """
    from repro.harness.experiment import run_experiment

    eval_every = scenario.resolved_eval_every(iterations)
    schedule = scenario.build_schedule(num_workers, iterations)
    report = ScenarioReport(
        name=scenario.name,
        title=scenario.title,
        kind=scenario.kind,
        meta={
            "workload": scenario.workload,
            "algorithm": scenario.algorithm,
            "num_workers": num_workers,
            "iterations": iterations,
            "seed": seed,
            "eval_every": eval_every,
            "fault_seed": scenario.fault_seed,
            "failure_rate": scenario.failure_rate,
            "straggler_fraction": scenario.straggler_fraction,
            "mttr": scenario.mttr,
            "slowdown": scenario.slowdown,
            "checkpoint_every": scenario.checkpoint_every,
            "continuity_factor": scenario.continuity_factor,
            "fault_events": schedule.to_dicts(),
            "tags": list(scenario.tags),
        },
    )

    results: List[TrainingResult] = []
    for attempt in ("run", "replay"):
        _check_cancelled(cancel_check)
        out = run_experiment(
            scenario.workload,
            scenario.algorithm,
            num_workers=num_workers,
            iterations=iterations,
            seed=seed,
            eval_every=eval_every,
            batch_size=scenario.batch_size,
            dtype=scenario.dtype,
            transport_dtype=scenario.transport_dtype,
            fault_schedule=schedule,
            fault_checkpoint_every=scenario.checkpoint_every,
            **scenario.fixed,
        )
        results.append(out.result)
        report.results[attempt] = out.result
        report.records.append(
            ScenarioRecord(
                params={"attempt": attempt},
                label=out.algorithm,
                metrics=result_metrics(out.result),
            )
        )

    deterministic = report.records[0].to_dict()["metrics"] == (
        report.records[1].to_dict()["metrics"]
    )
    continuity, continuity_detail = _check_loss_continuity(
        results[0], schedule, scenario.continuity_factor
    )
    report.meta["gates"] = {
        "deterministic_replay": deterministic,
        "loss_continuity": continuity,
        "continuity_detail": continuity_detail,
    }
    if not deterministic:
        raise ScenarioError(
            f"scenario {scenario.name!r}: deterministic-replay gate failed — two "
            "runs with the same fault seed produced different records"
        )
    if not continuity:
        raise ScenarioError(
            f"scenario {scenario.name!r}: loss-continuity gate failed — "
            f"{continuity_detail}"
        )
    return report


def _check_loss_continuity(result, schedule, factor: float):
    """All eval losses finite; each crash degrades loss by at most ``factor``."""
    import math

    history = result.history
    for point in history:
        if not math.isfinite(point.loss):
            return False, f"non-finite eval loss {point.loss} at step {point.step}"
    crash_steps = [e.step for e in schedule if e.kind == "crash"]
    for crash_step in crash_steps:
        before = [p for p in history if p.step <= crash_step]
        after = [p for p in history if p.step > crash_step]
        if not before or not after:
            continue
        pre, post = before[-1].loss, after[0].loss
        if post > factor * pre:
            return False, (
                f"eval loss jumped from {pre:.6g} (step {before[-1].step}) to "
                f"{post:.6g} (step {after[0].step}) across the crash at step "
                f"{crash_step} (allowed factor {factor})"
            )
    return True, "ok"


def _run_throughput(scenario: ThroughputScenario) -> ScenarioReport:
    from repro.cluster.compute_model import PAPER_WORKLOADS
    from repro.comm.cost_model import CommunicationCostModel
    from repro.metrics.throughput import throughput_curve

    comm = CommunicationCostModel(topology=scenario.topology)
    report = ScenarioReport(
        name=scenario.name,
        title=scenario.title,
        kind=scenario.kind,
        meta={
            "workloads": list(scenario.workloads),
            "worker_counts": list(scenario.worker_counts),
            "topology": scenario.topology,
            "tags": list(scenario.tags),
        },
    )
    for workload in scenario.workloads:
        spec = PAPER_WORKLOADS[workload]
        curve = throughput_curve(
            spec, list(scenario.worker_counts), spec.base_batch_size, comm
        )
        for workers, value in curve.items():
            report.records.append(
                ScenarioRecord(
                    params={"workload": workload, "workers": int(workers)},
                    label=workload,
                    metrics={"relative_throughput": float(value)},
                )
            )
    return report


def run_scenario(
    scenario: Union[str, Scenario],
    iterations: Optional[int] = None,
    num_workers: Optional[int] = None,
    seed: Optional[int] = None,
    stacked: Optional[bool] = None,
    max_stacked_rows: Optional[int] = None,
    fault_seed: Optional[int] = None,
    cancel_check=None,
    record_to=None,
) -> ScenarioReport:
    """Execute a scenario (by object or registry name) and return its report.

    ``iterations`` / ``num_workers`` / ``seed`` override the scenario's
    defaults without mutating it — the benchmark suite uses this to scale
    the same registered scenario between smoke and full-scale runs.
    ``stacked`` / ``max_stacked_rows`` likewise switch a sweep scenario
    between the sequential runner and the fused ``(S·N, D)`` executor (see
    :func:`repro.harness.sweep.run_sweep_stacked`); the override re-runs the
    scenario's own validation, so an unstackable scenario is rejected with a
    :class:`ScenarioError` before any training starts.  Overrides are
    rejected for analytic throughput scenarios, which have no training loop
    to resize, and ``stacked`` overrides for non-sweep kinds.

    ``fault_seed`` re-seeds a fault scenario's generated schedule (rejected
    for other kinds); explicit-event schedules ignore it by construction.

    ``cancel_check`` is an optional zero-argument callable polled between
    runs (each grid point, comparison method and endpoint anchor); when it
    returns ``True`` the execution stops by raising :class:`RunCancelled`.
    The experiment service uses this for cooperative job cancellation.

    ``record_to`` (a path or :class:`~repro.results.store.ResultsStore`)
    appends the finished report to the persistent run store (see
    :func:`repro.results.record_report`), making it queryable via
    ``repro scenario history``.  Cancelled or failed runs append nothing.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if isinstance(scenario, ThroughputScenario):
        if iterations is not None or num_workers is not None or seed is not None:
            raise ScenarioError(
                f"scenario {scenario.name!r} is analytic; iterations/num_workers/"
                "seed overrides do not apply"
            )
    if stacked is not None or max_stacked_rows is not None:
        if not isinstance(scenario, SweepScenario):
            raise ScenarioError(
                f"scenario {scenario.name!r} is a {scenario.kind} scenario; "
                "stacked execution applies to sweep scenarios only"
            )
        overrides: Dict[str, Any] = {}
        if stacked is not None:
            overrides["stacked"] = bool(stacked)
        if max_stacked_rows is not None:
            overrides["max_stacked_rows"] = int(max_stacked_rows)
        # replace() re-runs __post_init__, i.e. the stackability validation.
        scenario = dataclasses.replace(scenario, **overrides)
    if fault_seed is not None:
        if not isinstance(scenario, FaultScenario):
            raise ScenarioError(
                f"scenario {scenario.name!r} is a {scenario.kind} scenario; "
                "fault_seed overrides apply to fault scenarios only"
            )
        # replace() re-runs __post_init__, i.e. the schedule validation.
        scenario = dataclasses.replace(scenario, fault_seed=int(fault_seed))
    if isinstance(scenario, ThroughputScenario):
        report = _run_throughput(scenario)
    else:
        iterations = scenario.iterations if iterations is None else int(iterations)
        num_workers = scenario.num_workers if num_workers is None else int(num_workers)
        seed = scenario.seed if seed is None else int(seed)
        if iterations < 1:
            raise ScenarioError(f"iterations override must be >= 1, got {iterations}")
        if num_workers < 1:
            raise ScenarioError(f"num_workers override must be >= 1, got {num_workers}")
        if seed < 0:
            raise ScenarioError(f"seed override must be >= 0, got {seed}")
        if isinstance(scenario, SweepScenario):
            report = _run_sweep(scenario, iterations, num_workers, seed, cancel_check)
        elif isinstance(scenario, ComparisonScenario):
            report = _run_comparison(scenario, iterations, num_workers, seed, cancel_check)
        elif isinstance(scenario, FaultScenario):
            report = _run_fault(scenario, iterations, num_workers, seed, cancel_check)
        else:
            raise ScenarioError(f"unsupported scenario type {type(scenario).__name__}")
    if record_to is not None:
        from repro.results import record_report

        record_report(record_to, report)
    return report
