"""Scenario specifications: experiments as validated, declarative data.

A scenario captures *what* to run — workload preset, cluster size, trainer
family, the parameter grid (δ / staleness / compression / …) and the engine
knobs (compute dtype, transport dtype, replica pool) — without any run loop
of its own.  :func:`repro.scenarios.runner.run_scenario` is the single
executor for every kind; the benchmarks, examples and the CLI all look
scenarios up in the :mod:`~repro.scenarios.registry` instead of hand-rolling
sweep loops.

Four scenario kinds cover the paper's experiment shapes:

* :class:`SweepScenario` — one (workload, algorithm) pair swept over a grid
  of algorithm parameters (the Fig. 6 δ-sweeps, staleness sweeps, …);
* :class:`ComparisonScenario` — a labelled method grid run across one or
  more workloads (Table I);
* :class:`ThroughputScenario` — analytic scaling curves from the
  communication cost model, no training (Fig. 1a);
* :class:`FaultScenario` — a fault-injection reliability run (worker
  crashes, checkpoint rejoins, straggler bursts) with deterministic-replay
  and loss-continuity gates (see :mod:`repro.faults`).

Every dataclass validates itself in ``__post_init__`` and raises
:class:`ScenarioError` with an actionable message, so a typo in a scenario
definition fails at registration time, not hours into a nightly sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ScenarioError",
    "SweepScenario",
    "ComparisonScenario",
    "ThroughputScenario",
    "FaultScenario",
    "KNOWN_ALGORITHMS",
    "FAULT_ALGORITHMS",
    "RESERVED_PARAMETERS",
]


class ScenarioError(ValueError):
    """A scenario definition is invalid (unknown workload, bad grid, …)."""


#: Algorithms :func:`repro.harness.experiment.make_trainer` can build.
KNOWN_ALGORITHMS = ("bsp", "selsync", "fedavg", "ssp", "local_sgd", "compressed_bsp")

#: Algorithms that support fault injection (elastic worker masks): lockstep
#: trainers whose aggregation paths honor ``cluster.active_mask``.
FAULT_ALGORITHMS = ("bsp", "selsync", "local_sgd")

#: Keyword names owned by :func:`repro.harness.experiment.run_experiment`
#: itself.  Grid and ``fixed`` entries configure the *algorithm*, so these
#: must be expressed as scenario fields instead — a grid over e.g.
#: ``num_workers`` would silently shadow the scenario's cluster size.
RESERVED_PARAMETERS = frozenset(
    {
        "workload",
        "algorithm",
        "num_workers",
        "iterations",
        "seed",
        "eval_every",
        "partitioner",
        "use_default_partitioning",
        "convergence",
        "batch_size",
        "dtype",
        "transport_dtype",
        "pool_workers",
        "pool_start_method",
        "injection",
        "fault_schedule",
        "fault_seed",
        "failure_rate",
        "straggler_fraction",
        "mttr",
        "fault_slowdown",
        "fault_checkpoint_every",
    }
)


def _check_name(name: str) -> None:
    if not name or not isinstance(name, str):
        raise ScenarioError("scenario name must be a non-empty string")
    if any(ch.isspace() for ch in name):
        raise ScenarioError(f"scenario name {name!r} must not contain whitespace")


def _check_workload(workload: str) -> None:
    from repro.harness.experiment import WORKLOAD_PRESETS

    if workload not in WORKLOAD_PRESETS:
        raise ScenarioError(
            f"unknown workload {workload!r}; available: {sorted(WORKLOAD_PRESETS)}"
        )


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in KNOWN_ALGORITHMS:
        raise ScenarioError(
            f"unknown algorithm {algorithm!r}; available: {sorted(KNOWN_ALGORITHMS)}"
        )


def _check_run_settings(num_workers: int, iterations: int, seed: int) -> None:
    if num_workers < 1:
        raise ScenarioError(f"num_workers must be >= 1, got {num_workers}")
    if iterations < 1:
        raise ScenarioError(f"iterations must be >= 1, got {iterations}")
    if seed < 0:
        raise ScenarioError(f"seed must be >= 0, got {seed}")


def _check_parameter_names(names, where: str) -> None:
    for key in names:
        if not isinstance(key, str) or not key:
            raise ScenarioError(f"{where} keys must be non-empty strings, got {key!r}")
        if key in RESERVED_PARAMETERS:
            raise ScenarioError(
                f"{where} key {key!r} is reserved by run_experiment; "
                "set it as a scenario field instead"
            )


@dataclass(frozen=True)
class SweepScenario:
    """One (workload, algorithm) pair swept over a grid of trainer parameters.

    Attributes
    ----------
    name:
        Registry key (no whitespace).
    title:
        Human-readable description used as report titles.
    workload:
        A :data:`repro.harness.experiment.WORKLOAD_PRESETS` key.
    algorithm:
        A :func:`repro.harness.experiment.make_trainer` algorithm name.
    grid:
        ``{parameter: sequence of values}`` — the Cartesian product is run
        through :func:`repro.harness.sweep.grid_sweep`.  Keys must be
        algorithm keywords (``delta``, ``staleness``, ``sync_period``, …),
        never :data:`RESERVED_PARAMETERS`.
    fixed:
        Algorithm keywords passed unchanged to every run (e.g.
        ``{"aggregation": "grad"}``).
    num_workers / iterations / seed / eval_every / batch_size:
        Cluster and run-loop sizing.  ``eval_every=None`` defaults to
        ``max(iterations // 4, 1)`` at run time so iteration overrides keep
        a proportional evaluation cadence.
    dtype / transport_dtype / pool_workers / pool_start_method:
        Engine knobs, forwarded verbatim to ``run_experiment``.
    stacked:
        Execute the whole grid as one fused ``(S·N, D)`` run through
        :func:`repro.harness.sweep.run_sweep_stacked` instead of S
        sequential ``run_experiment`` calls.  Bit-identical in float64.
        Requires a lockstep algorithm (:data:`repro.harness.sweep.
        STACKED_ALGORITHMS`), policy-only grid keys (:data:`repro.harness.
        sweep.STACKABLE_GRID_KEYS`), a batchable workload (:data:`repro.
        harness.sweep.STACKED_WORKLOADS`) and ``pool_workers=0``.
    max_stacked_rows:
        Optional cap on the rows per fused slab in stacked mode (chunked
        execution is bit-identical to unchunked; this bounds the working
        set of one fused pass).  Ignored unless ``stacked=True``.
    verify_endpoints:
        For δ-sweeps (requires ``algorithm="selsync"`` and a ``delta`` grid
        entry): additionally run the existing :class:`~repro.algorithms.bsp.
        BSPTrainer` and a never-syncing :class:`~repro.algorithms.localsgd.
        LocalSGDTrainer` as anchors and record whether the δ=0 / δ=max runs
        reproduce them **exactly** (final loss, final metric and the full
        evaluation history).  Exactness needs gradient aggregation without a
        forced first sync, so ``fixed`` must pin
        ``aggregation="grad"`` and ``sync_on_first_step=False``.
    tags:
        Free-form labels for registry filtering (``"nightly"``,
        ``"delta-sweep"``, ``"paper-scale"``, …).
    """

    name: str
    title: str
    workload: str
    algorithm: str = "selsync"
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    num_workers: int = 4
    iterations: int = 80
    seed: int = 0
    eval_every: Optional[int] = None
    batch_size: Optional[int] = None
    dtype: str = "float64"
    transport_dtype: Optional[str] = None
    pool_workers: int = 0
    pool_start_method: Optional[str] = None
    stacked: bool = False
    max_stacked_rows: Optional[int] = None
    verify_endpoints: bool = False
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.name)
        _check_workload(self.workload)
        _check_algorithm(self.algorithm)
        _check_run_settings(self.num_workers, self.iterations, self.seed)
        if not self.grid:
            raise ScenarioError(f"scenario {self.name!r}: grid must not be empty")
        grid: Dict[str, Tuple[Any, ...]] = {}
        _check_parameter_names(self.grid.keys(), f"scenario {self.name!r} grid")
        for key, values in self.grid.items():
            values = tuple(values)
            if not values:
                raise ScenarioError(
                    f"scenario {self.name!r}: grid entry {key!r} has no values"
                )
            grid[key] = values
        _check_parameter_names(self.fixed.keys(), f"scenario {self.name!r} fixed")
        collisions = set(grid) & set(self.fixed)
        if collisions:
            raise ScenarioError(
                f"scenario {self.name!r}: {sorted(collisions)} appear in both "
                "grid and fixed"
            )
        if self.eval_every is not None and self.eval_every < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: eval_every must be >= 1, got {self.eval_every}"
            )
        if self.max_stacked_rows is not None and self.max_stacked_rows < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: max_stacked_rows must be >= 1 or None, "
                f"got {self.max_stacked_rows}"
            )
        if self.stacked:
            self._check_stackable(grid)
        if self.verify_endpoints:
            if self.algorithm != "selsync" or set(grid) != {"delta"}:
                raise ScenarioError(
                    f"scenario {self.name!r}: verify_endpoints requires "
                    "algorithm='selsync' with a grid over exactly 'delta'"
                )
            if len(grid["delta"]) < 2 or min(grid["delta"]) != 0.0:
                raise ScenarioError(
                    f"scenario {self.name!r}: verify_endpoints needs a delta grid "
                    "spanning from 0.0 (the BSP endpoint) to a local-SGD extreme"
                )
            if (
                self.fixed.get("aggregation") != "grad"
                or self.fixed.get("sync_on_first_step") is not False
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: verify_endpoints requires fixed "
                    "aggregation='grad' and sync_on_first_step=False (exact "
                    "BSP / local-SGD endpoint parity holds only there)"
                )
        # Freeze the normalized copies (tuples survive dataclasses.replace).
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "tags", tuple(self.tags))

    def _check_stackable(self, grid: Mapping[str, Tuple[Any, ...]]) -> None:
        """Reject stacked configurations run_sweep_stacked would refuse.

        Mirrors :func:`repro.harness.sweep.run_sweep_stacked`'s up-front
        restrictions (single source of truth: its module-level frozensets),
        so an unstackable scenario fails at registration time instead of
        hours into a nightly sweep.
        """
        from repro.harness.sweep import (
            STACKABLE_GRID_KEYS,
            STACKED_ALGORITHMS,
            STACKED_WORKLOADS,
        )

        if self.algorithm not in STACKED_ALGORITHMS:
            raise ScenarioError(
                f"scenario {self.name!r}: stacked execution supports lockstep "
                f"algorithms only ({sorted(STACKED_ALGORITHMS)}), "
                f"got {self.algorithm!r}"
            )
        unstackable = set(grid) - STACKABLE_GRID_KEYS
        if unstackable:
            raise ScenarioError(
                f"scenario {self.name!r}: grid keys {sorted(unstackable)} cannot "
                f"vary across stacked slices (policy-only keys: "
                f"{sorted(STACKABLE_GRID_KEYS)})"
            )
        if self.workload not in STACKED_WORKLOADS:
            raise ScenarioError(
                f"scenario {self.name!r}: workload {self.workload!r} is not "
                f"supported by the batched replica executor (stackable "
                f"workloads: {sorted(STACKED_WORKLOADS)})"
            )
        if self.pool_workers:
            raise ScenarioError(
                f"scenario {self.name!r}: stacked execution and the replica "
                "pool are mutually exclusive (set pool_workers=0)"
            )

    @property
    def kind(self) -> str:
        """Scenario kind discriminator: ``"sweep"``."""
        return "sweep"

    def resolved_eval_every(self, iterations: Optional[int] = None) -> int:
        """Evaluation cadence for a run of ``iterations`` steps."""
        if self.eval_every is not None:
            return self.eval_every
        return max((iterations or self.iterations) // 4, 1)


@dataclass(frozen=True)
class ComparisonScenario:
    """A labelled method grid run across one or more workloads (Table I).

    ``methods`` maps a display label to ``(algorithm, kwargs)``; every method
    runs on every workload with a shared iteration budget and (optionally)
    the Table-I convergence stopping rule.  ``baseline`` names the method
    other rows are compared against in reports.
    """

    name: str
    title: str
    methods: Mapping[str, Tuple[str, Mapping[str, Any]]]
    workloads: Tuple[str, ...] = ("resnet101",)
    num_workers: int = 4
    iterations: int = 160
    seed: int = 0
    eval_every: Optional[int] = None
    baseline: str = "bsp"
    use_convergence: bool = True
    convergence_patience: int = 4
    convergence_min_delta: float = 1e-3
    dtype: str = "float64"
    transport_dtype: Optional[str] = None
    pool_workers: int = 0
    pool_start_method: Optional[str] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.name)
        if not self.workloads:
            raise ScenarioError(f"scenario {self.name!r}: workloads must not be empty")
        for workload in self.workloads:
            _check_workload(workload)
        _check_run_settings(self.num_workers, self.iterations, self.seed)
        if not self.methods:
            raise ScenarioError(f"scenario {self.name!r}: methods must not be empty")
        methods: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        for label, entry in self.methods.items():
            if not isinstance(label, str) or not label:
                raise ScenarioError(
                    f"scenario {self.name!r}: method labels must be non-empty strings"
                )
            try:
                algorithm, kwargs = entry
            except (TypeError, ValueError):
                raise ScenarioError(
                    f"scenario {self.name!r}: method {label!r} must be an "
                    "(algorithm, kwargs) pair"
                ) from None
            _check_algorithm(algorithm)
            _check_parameter_names(
                kwargs.keys(), f"scenario {self.name!r} method {label!r}"
            )
            methods[label] = (algorithm, dict(kwargs))
        if self.baseline not in methods:
            raise ScenarioError(
                f"scenario {self.name!r}: baseline {self.baseline!r} is not one of "
                f"the methods {sorted(methods)}"
            )
        if self.convergence_patience < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: convergence_patience must be >= 1"
            )
        object.__setattr__(self, "methods", methods)
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "tags", tuple(self.tags))

    @property
    def kind(self) -> str:
        """Scenario kind discriminator: ``"comparison"``."""
        return "comparison"

    def resolved_eval_every(self, iterations: Optional[int] = None) -> int:
        """Evaluation cadence for a run of ``iterations`` steps."""
        if self.eval_every is not None:
            return self.eval_every
        return max((iterations or self.iterations) // 8, 1)


@dataclass(frozen=True)
class FaultScenario:
    """A fault-injection reliability run: crashes, rejoins, straggler bursts.

    The runner executes the (workload, algorithm) pair under a
    :class:`~repro.faults.schedule.FaultSchedule` **twice with the same
    fault seed** and enforces two gates:

    * *deterministic replay* — both runs must produce byte-identical
      records (the schedule, the data order, the masked fused compute and
      the simulated clock are all seeded, so any divergence is a bug);
    * *loss continuity* — every evaluation loss stays finite, and the first
      evaluation after each crash is no worse than ``continuity_factor``
      times the last evaluation before it (a crash must degrade training
      gracefully, not destroy it).

    ``events`` pins an explicit event list; when empty, the schedule is
    generated from ``(fault_seed, failure_rate, straggler_fraction, mttr,
    slowdown)``.  ``checkpoint_every`` controls the rejoin-from-checkpoint
    cadence (the step-0 snapshot always exists).
    """

    name: str
    title: str
    workload: str
    algorithm: str = "selsync"
    fault_seed: int = 0
    failure_rate: float = 0.0
    straggler_fraction: float = 0.0
    mttr: int = 5
    slowdown: float = 3.0
    events: Tuple[Any, ...] = ()
    checkpoint_every: Optional[int] = 10
    continuity_factor: float = 3.0
    fixed: Mapping[str, Any] = field(default_factory=dict)
    num_workers: int = 4
    iterations: int = 80
    seed: int = 0
    eval_every: Optional[int] = None
    batch_size: Optional[int] = None
    dtype: str = "float64"
    transport_dtype: Optional[str] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        from repro.faults.schedule import FaultError, FaultEvent

        _check_name(self.name)
        _check_workload(self.workload)
        if self.algorithm not in FAULT_ALGORITHMS:
            raise ScenarioError(
                f"scenario {self.name!r}: fault injection supports "
                f"{sorted(FAULT_ALGORITHMS)}, got {self.algorithm!r}"
            )
        _check_run_settings(self.num_workers, self.iterations, self.seed)
        if self.fault_seed < 0:
            raise ScenarioError(
                f"scenario {self.name!r}: fault_seed must be >= 0, got {self.fault_seed}"
            )
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ScenarioError(
                f"scenario {self.name!r}: failure_rate must be in [0, 1], "
                f"got {self.failure_rate}"
            )
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ScenarioError(
                f"scenario {self.name!r}: straggler_fraction must be in [0, 1], "
                f"got {self.straggler_fraction}"
            )
        if self.mttr < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: mttr must be >= 1, got {self.mttr}"
            )
        if self.slowdown < 1.0:
            raise ScenarioError(
                f"scenario {self.name!r}: slowdown must be >= 1, got {self.slowdown}"
            )
        if self.continuity_factor <= 0.0:
            raise ScenarioError(
                f"scenario {self.name!r}: continuity_factor must be > 0, "
                f"got {self.continuity_factor}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: checkpoint_every must be >= 1 or None, "
                f"got {self.checkpoint_every}"
            )
        if self.eval_every is not None and self.eval_every < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: eval_every must be >= 1, got {self.eval_every}"
            )
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ScenarioError(
                    f"scenario {self.name!r}: events must be FaultEvent instances, "
                    f"got {type(event).__name__}"
                )
        if not events and self.failure_rate == 0.0 and self.straggler_fraction == 0.0:
            raise ScenarioError(
                f"scenario {self.name!r}: no fault source — provide explicit "
                "events or a positive failure_rate / straggler_fraction"
            )
        _check_parameter_names(self.fixed.keys(), f"scenario {self.name!r} fixed")
        # Validate the schedule at registration time, not hours into a run.
        try:
            self.build_schedule(self.num_workers, self.iterations)
        except FaultError as exc:
            raise ScenarioError(f"scenario {self.name!r}: {exc}") from exc
        object.__setattr__(self, "events", events)
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "tags", tuple(self.tags))

    def build_schedule(self, num_workers: int, iterations: int):
        """The concrete :class:`~repro.faults.schedule.FaultSchedule` to run.

        Explicit ``events`` win; otherwise the schedule is generated from
        the scenario's seeded fault process.  Always validated against the
        actual (possibly overridden) cluster size and iteration budget.
        """
        from repro.faults.schedule import FaultSchedule

        if self.events:
            schedule = FaultSchedule(list(self.events))
            schedule.validate(num_workers, iterations)
            return schedule
        return FaultSchedule.generate(
            num_workers,
            iterations,
            seed=self.fault_seed,
            failure_rate=self.failure_rate,
            straggler_fraction=self.straggler_fraction,
            mttr=self.mttr,
            slowdown=self.slowdown,
        )

    @property
    def kind(self) -> str:
        """Scenario kind discriminator: ``"fault"``."""
        return "fault"

    def resolved_eval_every(self, iterations: Optional[int] = None) -> int:
        """Evaluation cadence for a run of ``iterations`` steps."""
        if self.eval_every is not None:
            return self.eval_every
        return max((iterations or self.iterations) // 8, 1)


@dataclass(frozen=True)
class ThroughputScenario:
    """Analytic relative-throughput curves over cluster sizes (Fig. 1a).

    No training happens: the curve comes from the paper-scale
    :data:`repro.cluster.compute_model.PAPER_WORKLOADS` specs priced through
    :class:`repro.comm.cost_model.CommunicationCostModel`, exactly as
    :func:`repro.metrics.throughput.throughput_curve` computes it.
    """

    name: str
    title: str
    workloads: Tuple[str, ...]
    worker_counts: Tuple[int, ...] = (1, 2, 4, 8, 16)
    topology: str = "ps"
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        from repro.cluster.compute_model import PAPER_WORKLOADS

        _check_name(self.name)
        if not self.workloads:
            raise ScenarioError(f"scenario {self.name!r}: workloads must not be empty")
        for workload in self.workloads:
            if workload not in PAPER_WORKLOADS:
                raise ScenarioError(
                    f"unknown paper workload {workload!r}; "
                    f"available: {sorted(PAPER_WORKLOADS)}"
                )
        if not self.worker_counts:
            raise ScenarioError(
                f"scenario {self.name!r}: worker_counts must not be empty"
            )
        if any(n < 1 for n in self.worker_counts):
            raise ScenarioError(
                f"scenario {self.name!r}: worker counts must be >= 1, "
                f"got {self.worker_counts}"
            )
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "worker_counts", tuple(int(n) for n in self.worker_counts))
        object.__setattr__(self, "tags", tuple(self.tags))

    @property
    def kind(self) -> str:
        """Scenario kind discriminator: ``"throughput"``."""
        return "throughput"
