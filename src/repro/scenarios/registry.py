"""The scenario registry: named, tagged, immutable experiment definitions.

One process-wide :class:`ScenarioRegistry` instance (:data:`REGISTRY`) holds
every built-in scenario from :mod:`repro.scenarios.catalog`; benchmarks,
examples and the CLI resolve scenarios by name through
:func:`get_scenario` instead of duplicating grids and cluster settings.
Custom registries can be created for tests or downstream suites — the
runner accepts scenario objects directly, so registration is a convenience,
not a requirement.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from repro.scenarios.spec import (
    ComparisonScenario,
    FaultScenario,
    ScenarioError,
    SweepScenario,
    ThroughputScenario,
)

Scenario = Union[SweepScenario, ComparisonScenario, ThroughputScenario, FaultScenario]

__all__ = [
    "Scenario",
    "ScenarioRegistry",
    "REGISTRY",
    "register_scenario",
    "get_scenario",
    "scenario_names",
]


class ScenarioRegistry:
    """A name → scenario mapping with duplicate protection and tag queries."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add ``scenario``; a duplicate name raises :class:`ScenarioError`."""
        if not isinstance(
            scenario,
            (SweepScenario, ComparisonScenario, ThroughputScenario, FaultScenario),
        ):
            raise ScenarioError(
                f"expected a scenario dataclass, got {type(scenario).__name__}"
            )
        if scenario.name in self._scenarios:
            raise ScenarioError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look a scenario up by name, with the available names on failure."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; available: {self.names()}"
            ) from None

    def names(self, tag: Optional[str] = None) -> List[str]:
        """Sorted scenario names, optionally restricted to one tag."""
        if tag is None:
            return sorted(self._scenarios)
        return sorted(
            name for name, scenario in self._scenarios.items() if tag in scenario.tags
        )

    def by_tag(self, tag: str) -> List[Scenario]:
        """All scenarios carrying ``tag``, in name order."""
        return [self._scenarios[name] for name in self.names(tag)]

    def __contains__(self, name: object) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterator[Scenario]:
        for name in self.names():
            yield self._scenarios[name]

    def __len__(self) -> int:
        return len(self._scenarios)


#: The process-wide registry the catalog populates at import time.
REGISTRY = ScenarioRegistry()


def register_scenario(scenario: Scenario) -> Scenario:
    """Register ``scenario`` in the global :data:`REGISTRY`."""
    return REGISTRY.register(scenario)


def get_scenario(name: str) -> Scenario:
    """Resolve ``name`` in the global :data:`REGISTRY` (catalog included)."""
    _ensure_catalog()
    return REGISTRY.get(name)


def scenario_names(tag: Optional[str] = None) -> List[str]:
    """Names in the global :data:`REGISTRY`, optionally filtered by tag."""
    _ensure_catalog()
    return REGISTRY.names(tag)


def _ensure_catalog() -> None:
    """Import the built-in catalog exactly once (idempotent)."""
    from repro.scenarios import catalog  # noqa: F401  (import registers)
