"""Declarative scenario registry: experiments as data, one runner for all.

A *scenario* is an immutable description of one experiment — workload
preset, cluster size, trainer family, the parameter grid and the engine
knobs — validated at construction and registered under a stable name.
:func:`run_scenario` is the single executor: it drives
:func:`repro.harness.experiment.run_experiment` (or the analytic cost model)
and returns a :class:`~repro.scenarios.runner.ScenarioReport` with
JSON-ready per-run records, the raw training results, and
:mod:`repro.harness.reporting` tables.

>>> from repro.scenarios import get_scenario, run_scenario, scenario_names
>>> scenario_names(tag="paper-scale")  # doctest: +SKIP
['deep-mlp-delta-n128', 'deep-mlp-delta-n256', ...]
>>> report = run_scenario("fig6-delta-sweep", iterations=40)  # doctest: +SKIP
>>> print(report.table())  # doctest: +SKIP

The built-in catalog (:mod:`repro.scenarios.catalog`) covers the paper's
figure/table scenarios and the large-N δ-sweep suite; the benchmark and
example scripts resolve everything through this registry instead of
hand-rolled loops.
"""

from repro.scenarios.spec import (
    ComparisonScenario,
    FAULT_ALGORITHMS,
    FaultScenario,
    KNOWN_ALGORITHMS,
    RESERVED_PARAMETERS,
    ScenarioError,
    SweepScenario,
    ThroughputScenario,
)
from repro.scenarios.registry import (
    REGISTRY,
    Scenario,
    ScenarioRegistry,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    RunCancelled,
    ScenarioRecord,
    ScenarioReport,
    result_metrics,
    run_scenario,
)

# Populate the global REGISTRY with the built-in scenarios eagerly, so
# direct REGISTRY access and register_scenario() collisions behave the same
# whether or not get_scenario()/scenario_names() ran first.
from repro.scenarios import catalog as _catalog  # noqa: E402,F401

__all__ = [
    "ComparisonScenario",
    "FAULT_ALGORITHMS",
    "FaultScenario",
    "KNOWN_ALGORITHMS",
    "REGISTRY",
    "RESERVED_PARAMETERS",
    "RunCancelled",
    "Scenario",
    "ScenarioError",
    "ScenarioRecord",
    "ScenarioRegistry",
    "ScenarioReport",
    "SweepScenario",
    "ThroughputScenario",
    "get_scenario",
    "register_scenario",
    "result_metrics",
    "run_scenario",
    "scenario_names",
]
