"""Statistical instrumentation used by SelSync and the analysis figures.

* :class:`EWMA` — exponentially weighted moving average smoothing used by the
  relative-gradient-change tracker (§III-A),
* running variance / gradient-noise statistics,
* Gaussian kernel density estimation for the gradient and weight
  distribution figures (Figs. 3 and 11),
* batched per-layer norms / KDE inputs straight from ``ParamSpec`` column
  slices of the ``(N, D)`` worker matrix (no per-worker unflatten),
* Hessian top-eigenvalue estimation by power iteration on finite-difference
  Hessian-vector products (Fig. 4).
"""

from repro.stats.ewma import EWMA, ewma_smooth
from repro.stats.layer_stats import (
    layer_sample,
    layer_view,
    matrix_layer_norms,
    mean_layer_norms,
)
from repro.stats.variance import (
    RunningVariance,
    batch_gradient_statistic,
    gradient_variance,
    gradient_second_moment,
    per_layer_norms,
)
from repro.stats.kde import gaussian_kde_density, histogram_density, distribution_summary
from repro.stats.hessian import hessian_top_eigenvalue, hessian_vector_product

__all__ = [
    "EWMA",
    "ewma_smooth",
    "RunningVariance",
    "batch_gradient_statistic",
    "gradient_variance",
    "gradient_second_moment",
    "per_layer_norms",
    "layer_sample",
    "layer_view",
    "matrix_layer_norms",
    "mean_layer_norms",
    "gaussian_kde_density",
    "histogram_density",
    "distribution_summary",
    "hessian_top_eigenvalue",
    "hessian_vector_product",
]
