"""Distribution density estimation for gradients and weights (Figs. 3 and 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import stats as scipy_stats


def gaussian_kde_density(
    samples: np.ndarray,
    grid_points: int = 200,
    grid: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian kernel density estimate of a 1-D sample.

    Returns ``(grid, density)``.  Degenerate samples (all identical) fall
    back to a narrow Gaussian bump centred on the value so figures never
    divide by a zero bandwidth.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ValueError("cannot estimate a density from zero samples")
    if grid is None:
        lo, hi = samples.min(), samples.max()
        if lo == hi:
            span = max(abs(lo), 1e-8)
            lo, hi = lo - 0.1 * span, hi + 0.1 * span
        pad = 0.1 * (hi - lo)
        grid = np.linspace(lo - pad, hi + pad, grid_points)
    else:
        grid = np.asarray(grid, dtype=np.float64)
    if samples.std() == 0.0 or samples.size < 2:
        center = samples.mean()
        width = max(abs(center) * 1e-3, 1e-8)
        density = np.exp(-0.5 * ((grid - center) / width) ** 2) / (width * np.sqrt(2 * np.pi))
        return grid, density
    try:
        kde = scipy_stats.gaussian_kde(samples)
        return grid, kde(grid)
    except (ValueError, np.linalg.LinAlgError):
        # Near-degenerate samples (e.g. gradients that have collapsed to a
        # handful of identical values late in training) make the bandwidth
        # estimate singular; fall back to a manual Gaussian KDE with a floor
        # on the bandwidth.
        bandwidth = max(samples.std() * samples.size ** (-0.2), 1e-12)
        diffs = (grid[:, None] - samples[None, :]) / bandwidth
        density = np.exp(-0.5 * diffs**2).sum(axis=1) / (
            samples.size * bandwidth * np.sqrt(2 * np.pi)
        )
        return grid, density


def histogram_density(
    samples: np.ndarray, bins: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalized histogram (bin centers, density) — a cheaper KDE stand-in."""
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ValueError("cannot histogram zero samples")
    density, edges = np.histogram(samples, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


@dataclass
class DistributionSummary:
    """Compact description of a weight/gradient distribution."""

    mean: float
    std: float
    min: float
    max: float
    fraction_near_zero: float
    quantiles: Dict[str, float]


def distribution_summary(samples: np.ndarray, zero_band: float = 1e-4) -> DistributionSummary:
    """Summary statistics used to compare distributions numerically.

    ``fraction_near_zero`` is the share of entries with |x| < ``zero_band`` —
    the quantity that visibly grows between epoch 1 and epoch 50 in Fig. 3.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ValueError("cannot summarize zero samples")
    q = np.quantile(samples, [0.05, 0.25, 0.5, 0.75, 0.95])
    return DistributionSummary(
        mean=float(samples.mean()),
        std=float(samples.std()),
        min=float(samples.min()),
        max=float(samples.max()),
        fraction_near_zero=float(np.mean(np.abs(samples) < zero_band)),
        quantiles={"p5": q[0], "p25": q[1], "p50": q[2], "p75": q[3], "p95": q[4]},
    )
