"""Hessian top-eigenvalue estimation (Fig. 4).

The paper compares the largest eigenvalue of the loss Hessian — an indicator
of critical learning periods — with the much cheaper first-order gradient
variance, and shows they follow the same trajectory.  Here the eigenvalue is
estimated by power iteration where each Hessian-vector product is computed by
central finite differences of the gradient:

    H v  ≈  ( g(w + εv) − g(w − εv) ) / (2ε)

which only requires the model's ordinary backward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.losses import cross_entropy_with_logits
from repro.nn.module import Module
from repro.utils.flatten import flatten_arrays, unflatten_vector
from repro.utils.rng import new_rng


def _gradient_at(
    model: Module,
    state_vector: np.ndarray,
    spec,
    inputs: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Gradient (flattened) of the loss at a given flattened parameter vector."""
    model.load_state_dict(unflatten_vector(state_vector, spec))
    model.zero_grad()
    logits = model.forward(inputs)
    _, dlogits = cross_entropy_with_logits(logits, targets)
    model.backward(dlogits)
    flat_grad, _ = flatten_arrays(model.gradient_dict())
    return flat_grad


def hessian_vector_product(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    vector: np.ndarray,
    epsilon: float = 1e-3,
) -> np.ndarray:
    """Finite-difference Hessian-vector product at the model's current parameters.

    The model's parameters are restored to their original values afterwards.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    original_state = model.state_dict()
    flat_w, spec = flatten_arrays(original_state)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if vector.size != flat_w.size:
        raise ValueError(
            f"vector has {vector.size} entries, model has {flat_w.size} parameters"
        )
    norm = np.linalg.norm(vector)
    if norm == 0:
        raise ValueError("cannot compute an HVP with the zero vector")
    unit = vector / norm
    try:
        g_plus = _gradient_at(model, flat_w + epsilon * unit, spec, inputs, targets)
        g_minus = _gradient_at(model, flat_w - epsilon * unit, spec, inputs, targets)
    finally:
        model.load_state_dict(original_state)
        model.zero_grad()
    return (g_plus - g_minus) / (2.0 * epsilon) * norm


def hessian_top_eigenvalue(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    num_iterations: int = 10,
    epsilon: float = 1e-3,
    seed: Optional[int] = 0,
    tol: float = 1e-3,
) -> float:
    """Largest-magnitude Hessian eigenvalue by power iteration.

    ``num_iterations`` power steps are performed (or fewer if the Rayleigh
    quotient converges to within ``tol``); 10 iterations suffice for the
    trend tracking in Fig. 4.
    """
    if num_iterations < 1:
        raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
    flat_w, _ = flatten_arrays(model.state_dict())
    rng = new_rng(seed)
    v = rng.standard_normal(flat_w.size)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    for _ in range(num_iterations):
        hv = hessian_vector_product(model, inputs, targets, v, epsilon=epsilon)
        new_eigenvalue = float(np.dot(v, hv))
        hv_norm = np.linalg.norm(hv)
        if hv_norm == 0:
            return 0.0
        v = hv / hv_norm
        if abs(new_eigenvalue - eigenvalue) < tol * max(abs(new_eigenvalue), 1.0):
            eigenvalue = new_eigenvalue
            break
        eigenvalue = new_eigenvalue
    return eigenvalue
