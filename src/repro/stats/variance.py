"""Gradient variance and second-moment statistics.

The paper tracks the variance of first-order gradients as a cheap proxy for
the Hessian's largest eigenvalue (Fig. 4, citing Accordion [27]); Δ(gᵢ) is
then the relative change of the smoothed statistic between consecutive
iterations (Eqn. 2).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np


class RunningVariance:
    """Welford online mean/variance over scalar observations."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def gradient_second_moment(grads: Mapping[str, np.ndarray]) -> float:
    """Mean squared gradient entry, E[g^2], across all parameters."""
    total_sq = 0.0
    total_count = 0
    for g in grads.values():
        g = np.asarray(g)
        total_sq += float(np.sum(g**2))
        total_count += g.size
    if total_count == 0:
        return 0.0
    return total_sq / total_count


def gradient_variance(grads: Mapping[str, np.ndarray]) -> float:
    """Variance of gradient entries across the whole model, Var[g]."""
    flat_parts = [np.asarray(g).ravel() for g in grads.values()]
    if not flat_parts:
        return 0.0
    flat = np.concatenate(flat_parts)
    if flat.size < 2:
        return 0.0
    return float(flat.var())


def gradient_norm(grads: Mapping[str, np.ndarray]) -> float:
    """Global L2 norm of the gradient, ||∇F||₂."""
    total_sq = sum(float(np.sum(np.asarray(g) ** 2)) for g in grads.values())
    return float(np.sqrt(total_sq))


def per_layer_norms(grads: Mapping[str, np.ndarray]) -> Dict[str, float]:
    """Per-parameter-tensor L2 norms (layer-wise diagnostics)."""
    return {name: float(np.linalg.norm(np.asarray(g).ravel())) for name, g in grads.items()}
