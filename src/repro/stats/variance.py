"""Gradient variance and second-moment statistics.

The paper tracks the variance of first-order gradients as a cheap proxy for
the Hessian's largest eigenvalue (Fig. 4, citing Accordion [27]); Δ(gᵢ) is
then the relative change of the smoothed statistic between consecutive
iterations (Eqn. 2).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np


class RunningVariance:
    """Welford online mean/variance over scalar observations."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def _as_flat(grads) -> np.ndarray:
    """Accept either a named-array mapping or an already-flat vector."""
    if isinstance(grads, np.ndarray):
        return grads.ravel()
    flat_parts = [np.asarray(g).ravel() for g in grads.values()]
    if not flat_parts:
        return np.zeros(0)
    return np.concatenate(flat_parts)


def gradient_second_moment(grads) -> float:
    """Mean squared gradient entry, E[g^2], across all parameters.

    ``grads`` may be a named mapping or a flat gradient vector.
    """
    flat = _as_flat(grads)
    if flat.size == 0:
        return 0.0
    return float(np.mean(flat**2))


def gradient_variance(grads) -> float:
    """Variance of gradient entries across the whole model, Var[g].

    ``grads`` may be a named mapping or a flat gradient vector.
    """
    flat = _as_flat(grads)
    if flat.size < 2:
        return 0.0
    return float(flat.var())


def gradient_norm(grads) -> float:
    """Global L2 norm of the gradient, ||∇F||₂.

    ``grads`` may be a named mapping or a flat gradient vector.
    """
    flat = _as_flat(grads)
    return float(np.sqrt(np.sum(flat**2)))


def batch_gradient_statistic(matrix: np.ndarray, statistic: str) -> np.ndarray:
    """Per-worker scalar gradient statistics over an ``(N, D)`` matrix.

    One vectorized pass computes the reduction for *all* workers at once,
    replacing N per-worker dict traversals on the SelSync hot path.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected an (N, D) matrix, got shape {matrix.shape}")
    if statistic == "variance":
        return matrix.var(axis=1)
    if statistic == "second_moment":
        return np.mean(matrix**2, axis=1)
    if statistic == "norm":
        return np.sqrt(np.sum(matrix**2, axis=1))
    raise ValueError(f"unknown statistic {statistic!r}")


def per_layer_norms(grads: Mapping[str, np.ndarray]) -> Dict[str, float]:
    """Per-parameter-tensor L2 norms (layer-wise diagnostics)."""
    return {name: float(np.linalg.norm(np.asarray(g).ravel())) for name, g in grads.items()}
