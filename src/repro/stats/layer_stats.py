"""Batched per-layer statistics straight from worker-matrix slices.

The pre-engine code computed layer-wise diagnostics by unflattening every
worker's gradient vector back into a named dict and reducing tensor by
tensor (:func:`repro.stats.variance.per_layer_norms` per worker).  Because
every layer occupies one contiguous ``[offset, offset + size)`` column range
of the ``(N, D)`` worker matrix (the :class:`~repro.engine.flat_buffer.ParamSpec`
layout), the same diagnostics reduce to one vectorized NumPy call per layer
over all workers at once — no per-worker unflatten, no copies.

These helpers accept the raw ``(N, D)`` array plus its spec, so they work on
the parameter matrix, the gradient matrix, or any same-layout stack (e.g. a
momentum matrix).  KDE inputs (:func:`layer_sample`) feed
:mod:`repro.stats.kde` consumers directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

import numpy as np


def _check_matrix(matrix: np.ndarray, spec) -> np.ndarray:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] != spec.total_size:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match layout (N, {spec.total_size})"
        )
    return matrix


def layer_view(matrix: np.ndarray, spec, name: str) -> np.ndarray:
    """Zero-copy ``(N, layer_size)`` view of one layer across all workers."""
    matrix = _check_matrix(matrix, spec)
    return matrix[:, spec.slice_of(name)]


def matrix_layer_norms(matrix: np.ndarray, spec) -> "OrderedDict[str, np.ndarray]":
    """Per-layer L2 norms for every worker: ``{name: (N,) norms}``.

    One fused ``einsum`` per layer over the column slice — the batched
    replacement for N calls to :func:`repro.stats.variance.per_layer_norms`.
    """
    matrix = _check_matrix(matrix, spec)
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, _, offset, size in spec:
        seg = matrix[:, offset : offset + size]
        out[name] = np.sqrt(np.einsum("ij,ij->i", seg, seg))
    return out


def mean_layer_norms(matrix: np.ndarray, spec) -> Dict[str, float]:
    """Worker-averaged per-layer L2 norms (scalar per layer)."""
    return {name: float(n.mean()) for name, n in matrix_layer_norms(matrix, spec).items()}


def layer_sample(
    matrix: np.ndarray,
    spec,
    name: str,
    max_samples: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Pooled entries of one layer across all workers, as KDE input.

    Returns a flat float64 sample of the layer's entries over every replica
    (the distribution Figs. 3 / 11 estimate).  ``max_samples`` subsamples
    without replacement for large layers; the draw is deterministic for a
    seeded ``rng``.
    """
    flat = layer_view(matrix, spec, name).ravel()
    if max_samples is not None and flat.size > max_samples:
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(flat.size, size=int(max_samples), replace=False)
        flat = flat[idx]
    return np.asarray(flat, dtype=np.float64)
