"""Exponentially weighted moving average (EWMA) smoothing.

The paper smooths the per-iteration gradient statistic with an EWMA over a
window of 25 iterations and a smoothing factor of N/100 (0.16 for a 16-node
cluster) before computing the relative gradient change Δ(gᵢ) (§III-A).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, List, Optional

import numpy as np


class EWMA:
    """Windowed exponentially weighted moving average.

    Parameters
    ----------
    alpha:
        Smoothing factor in (0, 1]; the paper uses ``num_workers / 100``.
    window:
        Number of recent observations kept; the EWMA is recomputed over this
        window so very old observations eventually drop out entirely (the
        paper's w = 25).
    """

    def __init__(self, alpha: float = 0.16, window: int = 25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.alpha = float(alpha)
        self.window = int(window)
        self._values: Deque[float] = deque(maxlen=window)
        self._smoothed: Optional[float] = None

    def update(self, value: float) -> float:
        """Add one observation and return the new smoothed value."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"EWMA observation must be finite, got {value}")
        self._values.append(value)
        if self._smoothed is None:
            self._smoothed = value
        else:
            self._smoothed = self.alpha * value + (1.0 - self.alpha) * self._smoothed
        return self._smoothed

    @property
    def value(self) -> float:
        if self._smoothed is None:
            raise RuntimeError("EWMA queried before any observation")
        return self._smoothed

    @property
    def ready(self) -> bool:
        """Whether at least one observation has been recorded."""
        return self._smoothed is not None

    @property
    def window_full(self) -> bool:
        return len(self._values) == self.window

    @property
    def count(self) -> int:
        return len(self._values)

    def window_mean(self) -> float:
        """Plain mean over the retained window (used in overhead comparisons)."""
        if not self._values:
            raise RuntimeError("EWMA window is empty")
        return float(np.mean(self._values))

    def reset(self) -> None:
        self._values.clear()
        self._smoothed = None


def ewma_smooth(values: Iterable[float], alpha: float = 0.16, window: int = 25) -> List[float]:
    """Smooth a whole series, returning one smoothed value per observation."""
    smoother = EWMA(alpha=alpha, window=window)
    return [smoother.update(v) for v in values]
