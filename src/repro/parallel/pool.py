"""Multiprocessing replica pool over the shared worker matrix.

:class:`ReplicaPool` forks (or spawns) one OS process per *replica group* —
a contiguous block of worker-matrix rows — and shards gradient computation
across them.  Parameters and gradients live in
:class:`~repro.parallel.shm.SharedMatrixStorage`, so

* a child's backward pass writes gradients straight into the shared
  ``(N, D)`` gradient matrix rows the parent aggregates from, and
* every parent-side mutation (fused optimizer steps, PS broadcasts,
  ``set_state``) is immediately visible to the children — no per-step
  parameter shipping in either direction.

Only forward/backward moves off the parent: batches go out over a pipe, the
per-replica losses and gradient norms come back, and the parent proceeds
with aggregation / Δ(gᵢ) tracking / compression against the exact matrices
the single-process engine would hold.  Each child runs either the
:class:`~repro.engine.replica_exec.BatchedReplicaExecutor` on its group's
row-slice sub-matrix or the same per-worker fallback loop the parent uses,
so float64 trajectories are bit-identical to the single-process path.

Determinism does not depend on the start method: children rebuild their
replicas from pickled snapshots, re-adopt the shared rows *without copying*
(``flatten_parameters(..., preserve=False)``), and reconstruct the shared
dropout stream from its seed, so ``fork`` and ``spawn`` produce the same
trajectories.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.parallel.shm import SharedMatrixHandle, SharedMatrixStorage

#: Start methods the pool accepts (resolved against the host's support).
START_METHODS = ("fork", "spawn", "forkserver")


class PoolCrashError(RuntimeError):
    """A pool child died (crash / kill) while work was outstanding."""


def resolve_start_method(start_method: Optional[str]) -> str:
    """Validate ``start_method`` or pick the platform default (prefer fork)."""
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in available else available[0]
    if start_method not in START_METHODS:
        raise ValueError(f"unknown start method {start_method!r}; expected {START_METHODS}")
    if start_method not in available:
        raise ValueError(
            f"start method {start_method!r} unavailable on this platform "
            f"(available: {available})"
        )
    return start_method


def group_bounds(num_workers: int, num_groups: int) -> List[Tuple[int, int]]:
    """Split ``num_workers`` rows into ``num_groups`` contiguous near-even groups."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    num_groups = max(1, min(int(num_groups), num_workers))
    base, extra = divmod(num_workers, num_groups)
    bounds = []
    lo = 0
    for g in range(num_groups):
        hi = lo + base + (1 if g < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass
class _GroupPayload:
    """Everything one child needs to rebuild its replica group (picklable)."""

    storage_handle: SharedMatrixHandle
    models_blob: bytes  # pickled list of this group's Module replicas
    lo: int
    hi: int
    total_workers: int
    use_executor: bool
    dropout_seed: Optional[int]


# --------------------------------------------------------------------------- #
# child process
# --------------------------------------------------------------------------- #
def _compute_row(model, batch) -> Tuple[float, float]:
    """Forward + backward for one replica (the Worker.compute_gradients_flat
    arithmetic, replicated exactly for cross-process parity)."""
    from repro.nn.losses import cross_entropy_with_logits

    inputs, targets = batch
    model.zero_grad()
    logits = model.forward(inputs)
    loss, dlogits = cross_entropy_with_logits(logits, targets)
    model.backward(dlogits)
    grad = model.grad_vector
    return float(loss), float(np.sqrt(grad @ grad))


def _compute_group(models, executor, batches) -> Tuple[List[float], List[float]]:
    """One gradient pass for a whole group; returns (losses, grad norms)."""
    if executor is not None:
        losses = executor.step(batches)
        if losses is not None:
            norms = executor.grad_norms()
            return [float(l) for l in losses], [float(n) for n in norms]
    out_losses, out_norms = [], []
    for model, batch in zip(models, batches):
        loss, norm = _compute_row(model, batch)
        out_losses.append(loss)
        out_norms.append(norm)
    return out_losses, out_norms


def _pool_child_main(conn, payload_bytes: bytes) -> None:
    """Entry point of one pool child (top-level so ``spawn`` can import it)."""
    from repro.engine.dropout_stream import SharedDropoutStream, attach_shared_dropout
    from repro.engine.replica_exec import BatchedReplicaExecutor
    from repro.engine.worker_matrix import WorkerMatrix
    from repro.telemetry.trace import Tracer

    # Children never record into the process-global telemetry state (fork
    # inherits the parent's enabled flags, spawn re-reads REPRO_TRACE_FILE —
    # either way the parent owns the sink).  Child-side timings go through a
    # private tracer and ride the reply tuple back when the parent asks.
    telemetry.configure(tracing=False, metrics=False, trace_file=None)
    child_tracer = Tracer()

    payload: _GroupPayload = pickle.loads(payload_bytes)
    storage = SharedMatrixStorage.attach(payload.storage_handle)
    models = pickle.loads(payload.models_blob)
    lo, hi = payload.lo, payload.hi
    # Re-adopt the shared rows WITHOUT preserving the pickled snapshots: the
    # shared matrix is authoritative (the parent may have stepped it between
    # pickling and the first command).
    for offset, model in enumerate(models):
        model.flatten_parameters(
            param_vector=storage.params[lo + offset],
            grad_vector=storage.grads[lo + offset],
            preserve=False,
        )
    stream = None
    if payload.dropout_seed is not None:
        stream = SharedDropoutStream(payload.dropout_seed, payload.total_workers)
        stream.set_step(0)  # armed like the parent's; every command re-syncs it
        for offset, model in enumerate(models):
            attach_shared_dropout(model, stream, worker_slot=lo + offset)
    sub_matrix = WorkerMatrix(
        hi - lo,
        models[0].flat_spec,
        params=storage.params[lo:hi],
        grads=storage.grads[lo:hi],
    )
    executor = BatchedReplicaExecutor.build(sub_matrix, models[0], row_offset=lo)
    use_executor = payload.use_executor
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away
            kind = message[0]
            if kind == "stop":
                conn.send(("ok",))
                break
            if kind == "use_executor":
                use_executor = bool(message[1])
                conn.send(("ok",))
            elif kind == "all":
                tick, batches = message[1], message[2]
                collect = len(message) > 3 and message[3]
                if stream is not None:
                    stream.set_step(tick)
                group_exec = executor if use_executor else None
                if collect:
                    with child_tracer.span("pool.child.step") as step_span:
                        step_span.set("rows", hi - lo)
                        step_span.set("tick", int(tick))
                        losses, norms = _compute_group(models, group_exec, batches)
                    conn.send(("ok", losses, norms, child_tracer.drain()))
                else:
                    losses, norms = _compute_group(models, group_exec, batches)
                    conn.send(("ok", losses, norms))
            elif kind == "one":
                tick, row, batch = message[1], message[2], message[3]
                collect = len(message) > 4 and message[4]
                if stream is not None:
                    stream.set_step(tick)
                if collect:
                    with child_tracer.span("pool.child.step") as step_span:
                        step_span.set("rows", 1)
                        step_span.set("tick", int(tick))
                        loss, norm = _compute_row(models[row - lo], batch)
                    conn.send(("ok", loss, norm, child_tracer.drain()))
                else:
                    loss, norm = _compute_row(models[row - lo], batch)
                    conn.send(("ok", loss, norm))
            else:  # defensive: unknown command
                conn.send(("error", f"unknown pool command {kind!r}"))
    finally:
        conn.close()
        storage.close()


# --------------------------------------------------------------------------- #
# parent-side pool
# --------------------------------------------------------------------------- #
def _terminate_processes(processes, connections) -> None:
    """Finalizer body: must not reference the pool object itself."""
    for conn in connections:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=2.0)


class ReplicaPool:
    """One process per replica group, sharded over the shared worker matrix."""

    def __init__(
        self,
        storage: SharedMatrixStorage,
        models: Sequence,
        num_groups: int,
        start_method: Optional[str] = None,
        use_executor: bool = True,
        dropout_seed: Optional[int] = None,
        step_timeout: float = 300.0,
    ) -> None:
        n = len(models)
        if n != storage.num_workers:
            raise ValueError(f"{n} models for storage of {storage.num_workers} workers")
        self.start_method = resolve_start_method(start_method)
        self.bounds = group_bounds(n, num_groups)
        self.num_workers = n
        self.step_timeout = float(step_timeout)
        self._closed = False
        ctx = multiprocessing.get_context(self.start_method)
        self._processes = []
        self._connections = []
        for lo, hi in self.bounds:
            payload = _GroupPayload(
                storage_handle=storage.handle,
                models_blob=pickle.dumps(list(models[lo:hi])),
                lo=lo,
                hi=hi,
                total_workers=n,
                use_executor=bool(use_executor),
                dropout_seed=dropout_seed,
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_pool_child_main,
                args=(child_conn, pickle.dumps(payload)),
                daemon=True,
                name=f"repro-pool-{lo}-{hi}",
            )
            proc.start()
            child_conn.close()
            self._processes.append(proc)
            self._connections.append(parent_conn)
        # Kill stray children even if the pool is never closed explicitly.
        self._finalizer = weakref.finalize(
            self, _terminate_processes, list(self._processes), list(self._connections)
        )

    # ------------------------------------------------------------------ #
    @property
    def num_groups(self) -> int:
        """Number of child processes (= replica groups) the pool runs."""
        return len(self.bounds)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed pool refuses commands."""
        return self._closed

    def group_of(self, worker_id: int) -> int:
        """Index of the replica group (child process) owning ``worker_id``."""
        for g, (lo, hi) in enumerate(self.bounds):
            if lo <= worker_id < hi:
                return g
        raise ValueError(f"worker_id {worker_id} out of range")

    # ------------------------------------------------------------------ #
    def _send(self, group: int, message) -> None:
        try:
            self._connections[group].send(message)
        except (BrokenPipeError, OSError):
            self._crash(group)

    def _recv(self, group: int):
        conn = self._connections[group]
        proc = self._processes[group]
        deadline = time.monotonic() + self.step_timeout
        while True:
            try:
                # poll() wakes as soon as data arrives; the 50 ms granularity
                # only bounds how fast a child *death* is noticed.
                if conn.poll(0.05):
                    reply = conn.recv()
                    break
            except (EOFError, OSError):
                self._crash(group)
            if not proc.is_alive():
                self._crash(group)
            if time.monotonic() > deadline:
                self.close()
                raise PoolCrashError(
                    f"pool group {group} did not answer within {self.step_timeout}s"
                )
        if reply[0] != "ok":
            self.close()
            raise PoolCrashError(f"pool group {group} failed: {reply[1:]}")
        return reply

    def _crash(self, group: int) -> None:
        lo, hi = self.bounds[group]
        proc = self._processes[group]
        proc.join(timeout=1.0)  # reap so exitcode is meaningful
        exitcode = proc.exitcode
        self.close()
        raise PoolCrashError(
            f"pool worker process for replica rows [{lo}, {hi}) died "
            f"(exitcode {exitcode}); pool shut down, shared state intact"
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    # ------------------------------------------------------------------ #
    def compute_all(self, batches: Sequence, tick: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Gradient pass for every replica, sharded across all groups.

        Gradients land in the shared matrix rows; returns per-replica
        ``(losses, grad_norms)`` arrays indexed by worker id.
        """
        self._check_open()
        if len(batches) != self.num_workers:
            raise ValueError(f"{len(batches)} batches for {self.num_workers} replicas")
        collect = telemetry.tracing_enabled()
        with telemetry.span("pool.roundtrip") as roundtrip:
            for g, (lo, hi) in enumerate(self.bounds):
                group_batches = list(batches[lo:hi])
                if collect:
                    self._send(g, ("all", int(tick), group_batches, True))
                else:
                    self._send(g, ("all", int(tick), group_batches))
            losses = np.empty(self.num_workers)
            norms = np.empty(self.num_workers)
            for g, (lo, hi) in enumerate(self.bounds):
                reply = self._recv(g)
                losses[lo:hi] = reply[1]
                norms[lo:hi] = reply[2]
                if len(reply) > 3 and reply[3]:
                    telemetry.get_tracer().adopt(reply[3], parent=roundtrip)
        return losses, norms

    def compute_one(self, worker_id: int, batch, tick: int = 0) -> Tuple[float, float]:
        """Gradient pass for a single replica (SSP's round-robin stepping)."""
        self._check_open()
        group = self.group_of(worker_id)
        collect = telemetry.tracing_enabled()
        with telemetry.span("pool.roundtrip") as roundtrip:
            if collect:
                self._send(group, ("one", int(tick), int(worker_id), batch, True))
            else:
                self._send(group, ("one", int(tick), int(worker_id), batch))
            reply = self._recv(group)
            if len(reply) > 3 and reply[3]:
                telemetry.get_tracer().adopt(reply[3], parent=roundtrip)
        return float(reply[1]), float(reply[2])

    def set_use_executor(self, flag: bool) -> None:
        """Toggle the children's batched executors (benchmark fallback knob)."""
        self._check_open()
        for g in range(self.num_groups):
            self._send(g, ("use_executor", bool(flag)))
        for g in range(self.num_groups):
            self._recv(g)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop every child and release the pipes (idempotent).

        The shared-memory segments are owned by the cluster's storage, not
        the pool; closing the pool never unlinks them.
        """
        if self._closed:
            return
        self._closed = True
        for conn, proc in zip(self._connections, self._processes):
            if proc.is_alive():
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        self._finalizer()  # close pipes, terminate stragglers, join
