"""Shared-memory multiprocessing worker pool over the worker matrix.

The engine's ``(N, D)`` worker matrix made per-step *framework* cost cheap;
this subsystem removes the remaining single-process ceiling on *model* cost.
:class:`~repro.parallel.shm.SharedMatrixStorage` backs the matrix with POSIX
shared memory, and :class:`~repro.parallel.pool.ReplicaPool` shards
forward/backward across one process per replica group while aggregation,
Δ(gᵢ) tracking and compression stay on the parent — against the exact same
matrices, bit-identically in float64.

Enable it per cluster with ``ClusterConfig(pool_workers=P)`` (or
``--pool-workers P`` on the CLI); see ARCHITECTURE.md "Process pool layer"
for the ownership and parity contracts.
"""

from repro.parallel.pool import (
    PoolCrashError,
    ReplicaPool,
    START_METHODS,
    group_bounds,
    resolve_start_method,
)
from repro.parallel.shm import SharedMatrixHandle, SharedMatrixStorage

__all__ = [
    "PoolCrashError",
    "ReplicaPool",
    "START_METHODS",
    "SharedMatrixHandle",
    "SharedMatrixStorage",
    "group_bounds",
    "resolve_start_method",
]
