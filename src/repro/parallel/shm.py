"""Shared-memory backing for the worker matrix.

One :class:`SharedMatrixStorage` owns the two POSIX shared-memory segments
that hold a cluster's ``(N, D)`` parameter and gradient matrices.  The
*parent* process creates the segments (``SharedMatrixStorage(...)``) and is
their sole owner: only it may ``unlink`` them, and a ``weakref.finalize``
guard unlinks them even if the owner is garbage collected or the interpreter
exits without an explicit ``close()`` — no segment outlives the run.

Replica-pool children *attach* by name (:meth:`SharedMatrixStorage.attach`)
and never unlink; attaching immediately unregisters the segment from the
child's ``resource_tracker`` so child exits cannot double-unlink or spam
"leaked shared_memory" warnings (Python < 3.13 has no ``track=False``).

Ownership contract (see ARCHITECTURE.md "Process pool layer"):

* parent allocates → children attach → children close on exit → parent
  unlinks (explicitly via ``close()`` or implicitly via the finalizer).
* ``close()`` on the owner unlinks the *names* but deliberately keeps the
  parent's own mapping alive: live NumPy views into the matrix (model
  parameters, optimizer state) stay valid, and the memory is released when
  the last mapping disappears — standard POSIX shm semantics.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SharedMatrixHandle:
    """Picklable descriptor a child process needs to attach the storage."""

    params_name: str
    grads_name: str
    num_workers: int
    total_size: int
    dtype_name: str


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without double-tracking it.

    Pool children share the parent's resource-tracker process (fork inherits
    its fd, spawn is handed it in the preparation data), and the tracker's
    registry is a set — so on Python < 3.13 the child's implicit re-register
    of the parent-owned name is a harmless no-op, and the parent's unlink
    later clears the single entry.  The child must NOT unregister: that
    would strip the parent's registration and break the leak guard.
    Python >= 3.13 can skip tracking explicitly.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _unlink_segments(*segments: shared_memory.SharedMemory) -> None:
    """Best-effort unlink used by both close() and the GC finalizer."""
    for segment in segments:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # already unlinked (idempotent close)


class SharedMatrixStorage:
    """Parent-owned shared ``(N, D)`` parameter and gradient arrays."""

    def __init__(
        self,
        num_workers: int,
        total_size: int,
        dtype,
        _segments: Optional[Tuple[shared_memory.SharedMemory, ...]] = None,
    ) -> None:
        self.num_workers = int(num_workers)
        self.total_size = int(total_size)
        self.dtype = np.dtype(dtype)
        if self.num_workers < 1 or self.total_size < 1:
            raise ValueError(
                f"storage needs num_workers >= 1 and total_size >= 1, got "
                f"({num_workers}, {total_size})"
            )
        nbytes = self.num_workers * self.total_size * self.dtype.itemsize
        if _segments is None:
            self.owner = True
            self._params_shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._grads_shm = shared_memory.SharedMemory(create=True, size=nbytes)
        else:
            self.owner = False
            self._params_shm, self._grads_shm = _segments
        shape = (self.num_workers, self.total_size)
        self.params = np.ndarray(shape, dtype=self.dtype, buffer=self._params_shm.buf)
        self.grads = np.ndarray(shape, dtype=self.dtype, buffer=self._grads_shm.buf)
        if self.owner:
            self.params.fill(0.0)
            self.grads.fill(0.0)
            # Unlink-on-GC guard: must not capture ``self`` (that would make
            # the storage immortal), so it closes over the segments alone.
            self._finalizer = weakref.finalize(
                self, _unlink_segments, self._params_shm, self._grads_shm
            )
        else:
            self._finalizer = None

    # ------------------------------------------------------------------ #
    @property
    def handle(self) -> SharedMatrixHandle:
        """Picklable attach token: segment names + layout for :meth:`attach`.

        This is the only thing that crosses the process boundary at pool
        start-up — children rebuild their `(N, D)` views from it without
        copying a byte of matrix data.
        """
        return SharedMatrixHandle(
            params_name=self._params_shm.name,
            grads_name=self._grads_shm.name,
            num_workers=self.num_workers,
            total_size=self.total_size,
            dtype_name=self.dtype.name,
        )

    @classmethod
    def attach(cls, handle: SharedMatrixHandle) -> "SharedMatrixStorage":
        """Attach an existing storage (child-process side; never unlinks)."""
        segments = (
            _attach_segment(handle.params_name),
            _attach_segment(handle.grads_name),
        )
        return cls(handle.num_workers, handle.total_size, handle.dtype_name, _segments=segments)

    # ------------------------------------------------------------------ #
    def unlink(self) -> None:
        """Remove the segment names (owner only; idempotent).

        Existing mappings — the parent's matrix views and any still-attached
        children — stay valid; the kernel frees the memory once the last
        mapping is closed.
        """
        if not self.owner:
            raise RuntimeError("only the owning (parent) storage may unlink segments")
        if self._finalizer is not None:
            self._finalizer()  # runs _unlink_segments exactly once
        else:  # pragma: no cover - finalizer already detached
            _unlink_segments(self._params_shm, self._grads_shm)

    def close(self) -> None:
        """Owner: unlink the names.  Child: drop this process's mapping."""
        if self.owner:
            self.unlink()
            return
        # BufferError means live array views still reference the mapping
        # (e.g. models not yet garbage collected); the mapping then simply
        # dies with the process, which is safe because children never own.
        try:
            self._params_shm.close()
            self._grads_shm.close()
        except BufferError:  # pragma: no cover - depends on caller's refs
            pass

    @property
    def nbytes(self) -> int:
        """Total shared bytes across both segments."""
        return self.params.nbytes + self.grads.nbytes
