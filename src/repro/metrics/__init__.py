"""Evaluation metrics and convergence/speedup accounting.

* accuracy / top-k accuracy for the classification workloads,
* perplexity for the Transformer language-model workload,
* throughput and parallel-scaling helpers (Fig. 1a),
* LSSR, the local-to-synchronous step ratio of Eqn. (4), and the derived
  communication-reduction factor,
* convergence detection (plateau of the test metric) used to decide when a
  Table-I run has finished.
"""

from repro.metrics.accuracy import accuracy, top_k_accuracy
from repro.metrics.evaluation import evaluate_model, EvalResult
from repro.metrics.lssr import LSSRTracker, lssr, communication_reduction
from repro.metrics.throughput import relative_throughput, scaling_efficiency
from repro.metrics.convergence import ConvergenceDetector, better_than

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "evaluate_model",
    "EvalResult",
    "LSSRTracker",
    "lssr",
    "communication_reduction",
    "relative_throughput",
    "scaling_efficiency",
    "ConvergenceDetector",
    "better_than",
]
