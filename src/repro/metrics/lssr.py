"""LSSR: local-to-synchronous step ratio (Eqn. 4 of the paper).

``LSSR = steps_local / (steps_local + steps_bsp)``; BSP has LSSR 0, pure
local-SGD has LSSR 1, and the communication reduction relative to BSP for the
same number of iterations is ``1 / (1 - LSSR)``.
"""

from __future__ import annotations


def lssr(local_steps: int, sync_steps: int) -> float:
    """Compute the LSSR score from step counters."""
    if local_steps < 0 or sync_steps < 0:
        raise ValueError("step counts must be non-negative")
    total = local_steps + sync_steps
    if total == 0:
        return 0.0
    return local_steps / total


def communication_reduction(lssr_value: float) -> float:
    """Communication reduction factor w.r.t. BSP, 1 / (1 - LSSR)."""
    if not 0.0 <= lssr_value <= 1.0:
        raise ValueError(f"LSSR must be in [0, 1], got {lssr_value}")
    if lssr_value >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - lssr_value)


class LSSRTracker:
    """Counts local vs synchronous steps during a training run."""

    def __init__(self) -> None:
        self.local_steps = 0
        self.sync_steps = 0

    def record_local(self, count: int = 1) -> None:
        """Count ``count`` steps that skipped synchronization (local SGD)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.local_steps += count

    def record_sync(self, count: int = 1) -> None:
        """Count ``count`` fully synchronous (BSP-style) steps."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.sync_steps += count

    @property
    def total_steps(self) -> int:
        """All recorded steps, local and synchronous."""
        return self.local_steps + self.sync_steps

    @property
    def value(self) -> float:
        """The LSSR score so far (0 before any step is recorded)."""
        return lssr(self.local_steps, self.sync_steps)

    @property
    def reduction_factor(self) -> float:
        """Communication reduction vs BSP, ``1 / (1 - LSSR)`` (∞ at 1)."""
        return communication_reduction(self.value)
