"""Model evaluation on held-out data for both task types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.accuracy import accuracy, top_k_accuracy
from repro.nn.losses import cross_entropy_with_logits, perplexity_from_loss
from repro.nn.module import Module


@dataclass
class EvalResult:
    """Evaluation summary for one checkpoint."""

    loss: float
    metric: float            # accuracy (higher better) or perplexity (lower better)
    metric_name: str          # "accuracy", "top5_accuracy" or "perplexity"
    num_samples: int

    @property
    def higher_is_better(self) -> bool:
        return self.metric_name != "perplexity"


def evaluate_model(
    model: Module,
    dataset,
    task: str = "classification",
    batch_size: int = 256,
    max_batches: Optional[int] = None,
    top_k: Optional[int] = None,
) -> EvalResult:
    """Evaluate ``model`` on ``dataset`` and return loss plus the task metric.

    ``task`` is ``"classification"`` (accuracy, or top-k accuracy when
    ``top_k`` is set) or ``"language_modeling"`` (perplexity).  Evaluation
    runs in ``eval()`` mode and restores the previous training flag.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if task not in ("classification", "language_modeling"):
        raise ValueError(f"unknown task {task!r}")
    was_training = model.training
    model.eval()
    total_loss = 0.0
    total_correct = 0.0
    total_samples = 0
    n = len(dataset)
    num_batches = int(np.ceil(n / batch_size))
    if max_batches is not None:
        num_batches = min(num_batches, max_batches)
    try:
        for b in range(num_batches):
            idx = np.arange(b * batch_size, min((b + 1) * batch_size, n))
            inputs, targets = dataset[idx]
            logits = model.forward(inputs)
            loss, _ = cross_entropy_with_logits(logits, targets)
            count = idx.size
            total_loss += loss * count
            if task == "classification":
                if top_k is not None and top_k > 1:
                    total_correct += top_k_accuracy(logits, targets, k=top_k) * count
                else:
                    total_correct += accuracy(logits, targets) * count
            total_samples += count
    finally:
        if was_training:
            model.train()
    if total_samples == 0:
        raise ValueError("dataset produced no evaluation samples")
    mean_loss = total_loss / total_samples
    if task == "language_modeling":
        return EvalResult(
            loss=mean_loss,
            metric=perplexity_from_loss(mean_loss),
            metric_name="perplexity",
            num_samples=total_samples,
        )
    metric_name = f"top{top_k}_accuracy" if (top_k is not None and top_k > 1) else "accuracy"
    return EvalResult(
        loss=mean_loss,
        metric=total_correct / total_samples,
        metric_name=metric_name,
        num_samples=total_samples,
    )
