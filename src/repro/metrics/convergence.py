"""Convergence detection.

Table I runs each method "until the accuracy/perplexity does not improve any
further" and records the iterations taken.  The detector reproduces that
stopping rule: a run has converged once the best test metric has not improved
by more than ``min_delta`` for ``patience`` consecutive evaluations.
"""

from __future__ import annotations

from typing import List, Optional


def better_than(
    candidate: float, reference: float, higher_is_better: bool, min_delta: float = 0.0
) -> bool:
    """Whether ``candidate`` improves on ``reference`` by more than ``min_delta``."""
    if higher_is_better:
        return candidate > reference + min_delta
    return candidate < reference - min_delta


class ConvergenceDetector:
    """Plateau detector over a stream of evaluation metrics."""

    def __init__(
        self,
        higher_is_better: bool = True,
        patience: int = 3,
        min_delta: float = 1e-4,
        target: Optional[float] = None,
    ) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be non-negative, got {min_delta}")
        self.higher_is_better = bool(higher_is_better)
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.target = target
        self.best: Optional[float] = None
        self.best_step: Optional[int] = None
        self.stale_evals = 0
        self.history: List[float] = []

    def update(self, metric: float, step: Optional[int] = None) -> bool:
        """Record one evaluation; returns True if the run should stop."""
        self.history.append(float(metric))
        if self.best is None or better_than(
            metric, self.best, self.higher_is_better, self.min_delta
        ):
            self.best = float(metric)
            self.best_step = step
            self.stale_evals = 0
        else:
            self.stale_evals += 1
        if self.target is not None and better_than(
            metric, self.target, self.higher_is_better, min_delta=0.0
        ):
            return True
        return self.stale_evals >= self.patience

    @property
    def converged_metric(self) -> float:
        """Best metric seen so far (raises if update was never called)."""
        if self.best is None:
            raise RuntimeError("ConvergenceDetector.update was never called")
        return self.best
