"""Parallel-efficiency metrics: relative throughput and scaling efficiency (Fig. 1a)."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cluster.compute_model import ComputeCostModel, WorkloadSpec
from repro.comm.cost_model import CommunicationCostModel


def relative_throughput(
    spec: WorkloadSpec,
    num_workers: int,
    batch_size: int,
    comm: CommunicationCostModel,
    compute: ComputeCostModel | None = None,
) -> float:
    """Cluster throughput relative to a single worker under per-step synchronization.

    Single-worker throughput is ``b / t_c``; an N-worker BSP/PS cluster
    processes ``N * b`` samples per step of duration ``t_c + t_s(N)``, so the
    relative throughput is ``N * t_c / (t_c + t_s(N))`` — the quantity plotted
    in Fig. 1a.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    compute = compute or ComputeCostModel(spec)
    t_c = compute.step_seconds(batch_size)
    t_s = comm.sync_seconds(spec.model_bytes, num_workers)
    single = batch_size / t_c
    cluster = num_workers * batch_size / (t_c + t_s)
    return cluster / single


def scaling_efficiency(
    spec: WorkloadSpec,
    num_workers: int,
    batch_size: int,
    comm: CommunicationCostModel,
) -> float:
    """Relative throughput divided by the ideal (linear) speedup."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    return relative_throughput(spec, num_workers, batch_size, comm) / num_workers


def throughput_curve(
    spec: WorkloadSpec,
    worker_counts: Sequence[int],
    batch_size: int,
    comm: CommunicationCostModel,
) -> Dict[int, float]:
    """Relative throughput for each cluster size (one Fig. 1a series)."""
    return {
        int(n): relative_throughput(spec, int(n), batch_size, comm) for n in worker_counts
    }
