"""Classification accuracy metrics (top-1 and top-k)."""

from __future__ import annotations

import numpy as np


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] for (n, classes) logits and (n,) integer targets."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim < 2:
        raise ValueError(f"logits must have a class dimension, got shape {logits.shape}")
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if flat_logits.shape[0] != flat_targets.shape[0]:
        raise ValueError(
            f"logits and targets disagree on sample count: {flat_logits.shape[0]} vs "
            f"{flat_targets.shape[0]}"
        )
    if flat_targets.size == 0:
        return 0.0
    predictions = flat_logits.argmax(axis=-1)
    return float((predictions == flat_targets).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy (the paper reports top-5 for the ImageNet workload)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if flat_logits.shape[0] != flat_targets.shape[0]:
        raise ValueError("logits and targets disagree on sample count")
    if flat_targets.size == 0:
        return 0.0
    k = min(k, flat_logits.shape[-1])
    # argpartition gives the k largest per row without a full sort.
    top_k = np.argpartition(-flat_logits, kth=k - 1, axis=-1)[:, :k]
    hits = (top_k == flat_targets[:, None]).any(axis=1)
    return float(hits.mean())
