"""Deterministic fault schedules: crash, rejoin and straggler-burst events.

A :class:`FaultSchedule` is the discrete-event layer on top of the lockstep
simulator: an ordered list of frozen :class:`FaultEvent` records that a
:class:`~repro.faults.controller.FaultController` applies to the cluster at
the start of each global step.  Schedules come from two sources:

* an explicit event list built with the :func:`crash` / :func:`rejoin` /
  :func:`straggler_burst` helpers (tests, hand-written scenarios), or
* :meth:`FaultSchedule.generate`, which draws events from a seeded RNG so a
  ``(seed, failure_rate, straggler_fraction, mttr)`` tuple always produces
  the same event list — the property the scenario runner's
  deterministic-replay gate checks end to end.

Both paths go through :meth:`FaultSchedule.validate`, which replays the
events against a worker-liveness mask and rejects impossible histories
(crashing a dead worker, rejoining a live one, losing the last worker)
exactly like the frozen scenario dataclasses reject bad grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.rng import new_rng


class FaultError(ValueError):
    """An invalid fault event or an impossible fault schedule."""


EVENT_KINDS = ("crash", "rejoin", "straggler")


@dataclass(frozen=True)
class FaultEvent:
    """One discrete fault applied at the start of a global step.

    ``crash`` removes the worker from the active set before step ``step``
    computes; ``rejoin`` restores it (optimizer and data state from the
    latest cluster checkpoint, parameters re-synced from the parameter
    server); ``straggler`` slows the worker by ``slowdown`` for ``duration``
    consecutive steps.
    """

    step: int
    kind: str
    worker: int
    duration: int = 0
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; choose from {EVENT_KINDS}"
            )
        if self.step < 0:
            raise FaultError(f"fault step must be non-negative, got {self.step}")
        if self.worker < 0:
            raise FaultError(f"fault worker must be non-negative, got {self.worker}")
        if self.duration < 0:
            raise FaultError(f"fault duration must be non-negative, got {self.duration}")
        if self.slowdown < 1.0:
            raise FaultError(f"fault slowdown must be >= 1, got {self.slowdown}")
        if self.kind == "straggler" and self.duration < 1:
            raise FaultError("straggler bursts need a duration of at least one step")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form, used in scenario report metadata."""
        payload: Dict[str, object] = {
            "step": self.step,
            "kind": self.kind,
            "worker": self.worker,
        }
        if self.kind == "straggler":
            payload["duration"] = self.duration
            payload["slowdown"] = self.slowdown
        return payload


def crash(worker: int, step: int) -> FaultEvent:
    """The worker dies before step ``step`` computes."""
    return FaultEvent(step=step, kind="crash", worker=worker)


def rejoin(worker: int, step: int) -> FaultEvent:
    """The worker rejoins the cluster before step ``step`` computes."""
    return FaultEvent(step=step, kind="rejoin", worker=worker)


def straggler_burst(
    worker: int, step: int, duration: int, slowdown: float = 3.0
) -> FaultEvent:
    """The worker runs ``slowdown``x slower for ``duration`` steps."""
    return FaultEvent(
        step=step, kind="straggler", worker=worker, duration=duration, slowdown=slowdown
    )


class FaultSchedule:
    """An immutable, step-ordered list of :class:`FaultEvent` records."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        events = tuple(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise FaultError(
                    f"FaultSchedule events must be FaultEvent instances, got {event!r}"
                )
        # Stable sort: events at the same step keep their insertion order, so
        # an explicit rejoin-then-crash sequence within one step is honored.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.step)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:
        return f"FaultSchedule({list(self.events)!r})"

    def events_at(self, step: int) -> Tuple[FaultEvent, ...]:
        """Every event scheduled to fire at the start of ``step``."""
        return tuple(e for e in self.events if e.step == step)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [e.to_dict() for e in self.events]

    # ------------------------------------------------------------------ #
    def validate(self, num_workers: int, iterations: Optional[int] = None) -> None:
        """Reject schedules the cluster cannot possibly execute.

        Replays the events in step order against a liveness mask: every
        worker index must be in range, a crash must hit a live worker, a
        rejoin must revive a dead one, and at least one worker must stay
        alive at all times.  ``iterations`` additionally bounds event steps.
        """
        if num_workers < 1:
            raise FaultError(f"num_workers must be >= 1, got {num_workers}")
        alive = [True] * num_workers
        for event in self.events:
            if event.worker >= num_workers:
                raise FaultError(
                    f"fault event targets worker {event.worker} "
                    f"but the cluster has {num_workers} workers"
                )
            if iterations is not None and event.step >= iterations:
                raise FaultError(
                    f"fault event at step {event.step} is beyond the "
                    f"{iterations}-iteration run"
                )
            if event.kind == "crash":
                if not alive[event.worker]:
                    raise FaultError(
                        f"worker {event.worker} crashes at step {event.step} "
                        "but is already down"
                    )
                if sum(alive) == 1:
                    raise FaultError(
                        f"crash at step {event.step} would take down the "
                        "last active worker"
                    )
                alive[event.worker] = False
            elif event.kind == "rejoin":
                if alive[event.worker]:
                    raise FaultError(
                        f"worker {event.worker} rejoins at step {event.step} "
                        "but never crashed"
                    )
                alive[event.worker] = True

    # ------------------------------------------------------------------ #
    @classmethod
    def generate(
        cls,
        num_workers: int,
        iterations: int,
        *,
        seed: int = 0,
        failure_rate: float = 0.0,
        straggler_fraction: float = 0.0,
        mttr: int = 5,
        slowdown: float = 3.0,
    ) -> "FaultSchedule":
        """Draw a schedule from a seeded RNG — a pure function of its arguments.

        Per step, every live worker crashes with probability ``failure_rate``
        (never the last live one); downtime is geometric with mean ``mttr``
        steps, and the rejoin is scheduled only if it lands inside the run.
        Straggler bursts of length ``mttr`` start at rate
        ``straggler_fraction / mttr`` per worker-step, so roughly a
        ``straggler_fraction`` share of worker time is spent slowed by
        ``slowdown``.  The RNG is consumed in a fixed per-step pattern
        (one crash draw block, one straggler draw block) regardless of
        outcomes, keeping the schedule byte-stable under parameter tweaks.
        """
        if num_workers < 1:
            raise FaultError(f"num_workers must be >= 1, got {num_workers}")
        if iterations < 1:
            raise FaultError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 <= failure_rate <= 1.0:
            raise FaultError(f"failure_rate must be in [0, 1], got {failure_rate}")
        if not 0.0 <= straggler_fraction <= 1.0:
            raise FaultError(
                f"straggler_fraction must be in [0, 1], got {straggler_fraction}"
            )
        if mttr < 1:
            raise FaultError(f"mttr must be >= 1, got {mttr}")
        if slowdown < 1.0:
            raise FaultError(f"slowdown must be >= 1, got {slowdown}")

        rng = new_rng(seed)
        events: List[FaultEvent] = []
        down_until: Dict[int, int] = {}
        burst_until: Dict[int, int] = {}
        alive = [True] * num_workers
        for step in range(iterations):
            # Due rejoins fire before new crash draws for this step.
            for worker in sorted(down_until):
                if down_until[worker] == step:
                    events.append(rejoin(worker, step))
                    alive[worker] = True
                    del down_until[worker]
            crash_draws = rng.random(num_workers)
            burst_draws = rng.random(num_workers)
            for worker in range(num_workers):
                if (
                    alive[worker]
                    and crash_draws[worker] < failure_rate
                    and sum(alive) > 1
                ):
                    events.append(crash(worker, step))
                    alive[worker] = False
                    downtime = max(int(rng.geometric(1.0 / mttr)), 1)
                    if step + downtime < iterations:
                        down_until[worker] = step + downtime
            burst_rate = straggler_fraction / mttr
            for worker in range(num_workers):
                if (
                    alive[worker]
                    and burst_until.get(worker, -1) < step
                    and burst_draws[worker] < burst_rate
                ):
                    duration = min(mttr, iterations - step)
                    events.append(straggler_burst(worker, step, duration, slowdown))
                    burst_until[worker] = step + duration - 1
        schedule = cls(events)
        schedule.validate(num_workers, iterations)
        return schedule
