"""Deterministic fault injection and elasticity for the simulated cluster.

Three pieces compose the fault layer:

* :mod:`repro.faults.schedule` — frozen :class:`FaultEvent` records and the
  seeded/explicit :class:`FaultSchedule` (crash, rejoin, straggler bursts),
  validated like the frozen scenario dataclasses.
* :mod:`repro.faults.checkpoint` — :class:`ClusterCheckpoint`: full cluster
  snapshot/restore as a handful of contiguous copies over the flat buffers.
* :mod:`repro.faults.controller` — the :class:`FaultController` a trainer
  calls before every step to apply the schedule: crashed rows drop out of
  the fused engine and every aggregation mask, rejoins restore from the
  latest checkpoint and re-sync from the parameter server (priced on the
  simulated clock), straggler bursts scale per-worker compute speed.
"""

from repro.faults.checkpoint import (
    ClusterCheckpoint,
    restore_cluster,
    restore_worker,
    snapshot_cluster,
)
from repro.faults.controller import FaultController
from repro.faults.schedule import (
    EVENT_KINDS,
    FaultError,
    FaultEvent,
    FaultSchedule,
    crash,
    rejoin,
    straggler_burst,
)

__all__ = [
    "EVENT_KINDS",
    "ClusterCheckpoint",
    "FaultController",
    "FaultError",
    "FaultEvent",
    "FaultSchedule",
    "crash",
    "rejoin",
    "restore_cluster",
    "restore_worker",
    "snapshot_cluster",
    "straggler_burst",
]
