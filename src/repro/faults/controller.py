"""Drives a :class:`~repro.faults.schedule.FaultSchedule` through a cluster.

The controller is attached to a trainer (``trainer.attach_fault_controller``)
and called once at the start of every global step, before the step computes.
It applies the step's events in order:

* **crash** — snapshot the cluster (the rejoin's restore point), then drop
  the worker from the active set; the engine's fused forward/backward and
  every aggregation mask skip the row from this step on.
* **rejoin** — reactivate the worker, restore its optimizer moments, data
  stream and counters from the latest checkpoint, fast-forward its simulated
  clock to the cluster barrier, charge the full-model re-sync transfer
  through the :class:`~repro.comm.cost_model.CommunicationCostModel`, and
  pull the current global state from the parameter server onto its row.
* **straggler** — scale the worker's compute speed down for the burst's
  duration (compounding with the cluster's configured speed model).

Every applied event is counted in telemetry (``repro_fault_events_total``)
and appended to :attr:`FaultController.event_log` for scenario metadata.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.faults.checkpoint import (
    ClusterCheckpoint,
    restore_worker,
    snapshot_cluster,
)
from repro.faults.schedule import FaultSchedule


class FaultController:
    """Applies scheduled crash / rejoin / straggler events to a cluster."""

    def __init__(
        self,
        cluster: Any,
        schedule: FaultSchedule,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        schedule.validate(cluster.num_workers)
        self.cluster = cluster
        self.schedule = schedule
        self.checkpoint_every = checkpoint_every
        # A step-0 snapshot guarantees every rejoin has a restore point even
        # before the first crash or periodic checkpoint fires.
        self.latest_checkpoint: ClusterCheckpoint = snapshot_cluster(cluster)
        self.event_log: List[Dict[str, object]] = []
        self.crash_count = 0
        self.rejoin_count = 0
        self.straggler_count = 0
        self._burst_ends: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def before_step(self, step: int) -> None:
        """Apply everything scheduled for ``step`` (called before it computes)."""
        cluster = self.cluster
        for worker_id, end in list(self._burst_ends.items()):
            if step >= end:
                cluster.fault_speed_scale[worker_id] = 1.0
                del self._burst_ends[worker_id]
        if (
            self.checkpoint_every is not None
            and step > 0
            and step % self.checkpoint_every == 0
        ):
            self.latest_checkpoint = snapshot_cluster(cluster)
        for event in self.schedule.events_at(step):
            if event.kind == "crash":
                self._apply_crash(event)
            elif event.kind == "rejoin":
                self._apply_rejoin(event)
            else:
                self._apply_straggler(event)
            self._record(event)

    # ------------------------------------------------------------------ #
    def _apply_crash(self, event) -> None:
        with telemetry.span("faults.crash"):
            # Snapshot before the row is dropped so the rejoin restores the
            # worker's optimizer and data stream as of the crash instant.
            self.latest_checkpoint = snapshot_cluster(self.cluster)
            self.cluster.deactivate_worker(event.worker)
        self.crash_count += 1

    def _apply_rejoin(self, event) -> None:
        cluster = self.cluster
        with telemetry.span("faults.rejoin"):
            cluster.reactivate_worker(event.worker)
            restore_worker(cluster, self.latest_checkpoint, event.worker)
            # The rejoined worker fast-forwards to the cluster barrier, then
            # pays a full-model pull to re-sync with the current global state.
            cluster.clock.sync_worker(event.worker)
            model_bytes = cluster.workload_spec.model_bytes
            resync_s = cluster.comm_model.p2p_seconds(
                model_bytes * cluster.comm_model.wire_scale
            )
            cluster.clock.advance_worker(
                event.worker, resync_s, bucket="communication"
            )
            if telemetry.metrics_enabled():
                telemetry.count(
                    "repro_comm_wire_bytes_total",
                    value=model_bytes * cluster.comm_model.wire_scale,
                    kind="resync",
                )
            cluster.workers[event.worker].set_state(
                cluster.ps.pull_vector(event.worker)
            )
        self.rejoin_count += 1

    def _apply_straggler(self, event) -> None:
        self.cluster.fault_speed_scale[event.worker] = 1.0 / event.slowdown
        self._burst_ends[event.worker] = event.step + event.duration
        self.straggler_count += 1

    def _record(self, event) -> None:
        if telemetry.metrics_enabled():
            telemetry.count("repro_fault_events_total", kind=event.kind)
        self.event_log.append(event.to_dict())
