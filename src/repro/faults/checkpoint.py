"""Full-cluster checkpoint/restore as a handful of contiguous copies.

The flat-buffer engine keeps every replica's parameters and gradients as
rows of one ``(N, D)`` matrix, every optimizer's state as flat vectors
aliasing those rows, and the parameter server's state as one more flat
vector — so a :class:`ClusterCheckpoint` is nothing more than a few
``ndarray.copy()`` calls plus small scalar state (clocks, RNG streams,
loader cursors, byte counters).  Restoring writes the copies back in place:
no object graph is rebuilt, every live view stays valid.

:func:`snapshot_cluster` / :func:`restore_cluster` are duck-typed against
:class:`~repro.cluster.cluster.SimulatedCluster` (imported nowhere here, so
``repro.faults`` stays import-light); :func:`restore_worker` restores a
single worker's slice of a checkpoint, which is how rejoin-from-checkpoint
is implemented by the :class:`~repro.faults.controller.FaultController`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


def _rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    return copy.deepcopy(rng.bit_generator.state)


def _set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    rng.bit_generator.state = copy.deepcopy(state)


def _loader_state(loader: Any) -> Dict[str, Any]:
    return {
        "indices": loader.indices.copy(),
        "cursor": loader._cursor,
        "epoch": loader._epoch,
        "rng": _rng_state(loader._rng),
    }


def _restore_loader(loader: Any, state: Dict[str, Any]) -> None:
    loader.indices[:] = state["indices"]
    loader._cursor = state["cursor"]
    loader._epoch = state["epoch"]
    _set_rng_state(loader._rng, state["rng"])


@dataclass
class ClusterCheckpoint:
    """A point-in-time snapshot of the complete simulated-cluster state.

    Everything a bit-identical continuation needs: the ``(N, D)`` parameter
    and gradient matrices, per-worker optimizer state (velocity / Adam
    moments, learning rate, step counts), the parameter-server vector and
    its accounting, the simulated clock, backend byte counters, per-worker
    data-loader positions and RNG streams, the evaluation RNG, and the
    elastic worker mask.
    """

    step: int
    params: np.ndarray
    grads: np.ndarray
    optimizer_states: List[Dict[str, Any]]
    optimizer_lrs: List[float]
    optimizer_step_counts: List[int]
    worker_steps_taken: List[int]
    worker_last_loss: List[Optional[float]]
    worker_last_grad_norm: List[Optional[float]]
    loader_states: List[Dict[str, Any]]
    ps_state: np.ndarray
    ps_version: int
    ps_worker_clocks: np.ndarray
    ps_pushed_bytes: float
    ps_pulled_bytes: float
    ps_aggregations: int
    clock_worker_time: np.ndarray
    clock_buckets: Dict[str, float]
    backend_total_bytes: float
    backend_calls: Dict[str, int]
    backend_bytes_by_op: Dict[str, float]
    eval_rng_state: Dict[str, Any]
    dropout_tick: int
    active_mask: np.ndarray
    fault_speed_scale: np.ndarray
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_workers(self) -> int:
        return int(self.params.shape[0])


def snapshot_cluster(cluster: Any) -> ClusterCheckpoint:
    """Copy the full cluster state into a :class:`ClusterCheckpoint`."""
    return ClusterCheckpoint(
        step=int(cluster.global_step),
        params=cluster.matrix.params.copy(),
        grads=cluster.matrix.grads.copy(),
        optimizer_states=[w.optimizer.state_dict() for w in cluster.workers],
        optimizer_lrs=[float(w.optimizer.lr) for w in cluster.workers],
        optimizer_step_counts=[int(w.optimizer.step_count) for w in cluster.workers],
        worker_steps_taken=[int(w.steps_taken) for w in cluster.workers],
        worker_last_loss=[w.last_loss for w in cluster.workers],
        worker_last_grad_norm=[w.last_grad_norm for w in cluster.workers],
        loader_states=[_loader_state(w.loader) for w in cluster.workers],
        ps_state=cluster.ps.state_vector.copy(),
        ps_version=int(cluster.ps.version),
        ps_worker_clocks=cluster.ps.worker_clocks.copy(),
        ps_pushed_bytes=float(cluster.ps.total_pushed_bytes),
        ps_pulled_bytes=float(cluster.ps.total_pulled_bytes),
        ps_aggregations=int(cluster.ps.aggregations),
        clock_worker_time=cluster.clock.worker_time.copy(),
        clock_buckets=dict(cluster.clock.buckets),
        backend_total_bytes=float(cluster.backend.record.total_bytes),
        backend_calls=dict(cluster.backend.record.calls),
        backend_bytes_by_op=dict(cluster.backend.record.bytes_by_op),
        eval_rng_state=_rng_state(cluster._eval_rng),
        dropout_tick=int(cluster._dropout_tick),
        active_mask=cluster.active_mask.copy(),
        fault_speed_scale=cluster.fault_speed_scale.copy(),
    )


def restore_cluster(cluster: Any, ckpt: ClusterCheckpoint) -> None:
    """Write a checkpoint back onto the cluster, in place.

    Every buffer is restored through its live view (no rebinding), so
    adopted modules, fused optimizers and shared-memory storage all see the
    restored state immediately.
    """
    if ckpt.num_workers != cluster.num_workers:
        raise ValueError(
            f"checkpoint holds {ckpt.num_workers} workers "
            f"but the cluster has {cluster.num_workers}"
        )
    cluster.global_step = ckpt.step
    cluster.matrix.params[:] = ckpt.params
    cluster.matrix.grads[:] = ckpt.grads
    for worker_id in range(ckpt.num_workers):
        restore_worker(cluster, ckpt, worker_id, sync_params=False)
    ps = cluster.ps
    ps.state_vector[:] = ckpt.ps_state
    ps.version = ckpt.ps_version
    ps.worker_clocks[:] = ckpt.ps_worker_clocks
    ps.total_pushed_bytes = ckpt.ps_pushed_bytes
    ps.total_pulled_bytes = ckpt.ps_pulled_bytes
    ps.aggregations = ckpt.ps_aggregations
    cluster.clock.worker_time[:] = ckpt.clock_worker_time
    cluster.clock.buckets = dict(ckpt.clock_buckets)
    record = cluster.backend.record
    record.total_bytes = ckpt.backend_total_bytes
    record.calls = dict(ckpt.backend_calls)
    record.bytes_by_op = dict(ckpt.backend_bytes_by_op)
    _set_rng_state(cluster._eval_rng, ckpt.eval_rng_state)
    cluster._dropout_tick = ckpt.dropout_tick
    cluster.active_mask[:] = ckpt.active_mask
    cluster.fault_speed_scale[:] = ckpt.fault_speed_scale


def restore_worker(
    cluster: Any, ckpt: ClusterCheckpoint, worker_id: int, sync_params: bool = True
) -> None:
    """Restore one worker's slice of a checkpoint (rejoin-from-checkpoint).

    ``sync_params=False`` skips the parameter row (the full-cluster restore
    assigns the whole matrix in one copy; a rejoin typically follows up with
    a fresh parameter-server pull anyway).
    """
    worker = cluster.workers[worker_id]
    if sync_params:
        cluster.matrix.params[worker_id] = ckpt.params[worker_id]
    worker.optimizer.load_state_dict(ckpt.optimizer_states[worker_id])
    worker.optimizer.lr = ckpt.optimizer_lrs[worker_id]
    worker.optimizer._step_count = ckpt.optimizer_step_counts[worker_id]
    worker.steps_taken = ckpt.worker_steps_taken[worker_id]
    worker.last_loss = ckpt.worker_last_loss[worker_id]
    worker.last_grad_norm = ckpt.worker_last_grad_norm[worker_id]
    _restore_loader(worker.loader, ckpt.loader_states[worker_id])
