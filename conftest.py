"""Root pytest configuration shared by the test and benchmark suites."""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--run-perf",
        action="store_true",
        default=False,
        help="run the engine perf smoke benchmark (writes BENCH_engine.json)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "perf: engine perf-tracking benchmarks, gated behind --run-perf"
    )
