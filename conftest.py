"""Root pytest configuration shared by the test and benchmark suites.

This is the single registration point for the suite's custom markers and
command-line flags, so ``pytest --strict-markers`` (enforced in CI) passes
from any invocation directory:

* ``perf`` marker / ``--run-perf`` — engine perf-tracking benchmarks
  (``benchmarks/perf_smoke.py``), skipped unless explicitly requested.
  ``--run-perf`` also (re)writes ``BENCH_engine.json`` at the repo root.
* ``--run-scale`` — the large-N scale sweep (N = 8..256 on the MLP and
  transformer analogs); merges a ``scale_sweep`` section into
  ``BENCH_engine.json``.  Slower than the perf smoke, so it runs in the
  nightly workflow rather than per-PR CI.
* ``pool`` marker — tests exercising the multiprocessing replica pool
  (``tests/parallel/``); they run in tier-1 but are markable out with
  ``-m "not pool"`` on machines where process spawning is restricted.
* ``--run-pool`` — the replica-pool throughput benchmark (pool vs
  single-process ConvNet at N = 64); merges a ``pool`` section into
  ``BENCH_engine.json``.  Runs in the nightly workflow (the speedup gate
  needs real cores).
* ``--run-telemetry`` — the telemetry overhead benchmark (baseline vs
  disabled vs enabled tracing on the BSP MLP loop); merges a ``telemetry``
  section into ``BENCH_engine.json``, gated at disabled <= 2% / enabled
  <= 10% overhead.  Runs in the per-PR perf job.
* ``--run-scenarios`` — the paper-scale scenario sweeps
  (``benchmarks/scenario_suite.py``: deep-MLP and transformer δ-sweeps at
  N = 64–256 from the declarative registry); writes
  ``BENCH_scenarios.json`` at the repo root and, under ``--write-results``,
  the per-scenario reports in ``benchmarks/results/scenarios/``.  Runs in
  the nightly workflow.
* ``--stacked`` — with ``--run-scenarios``: also run the stacked contrast
  (every stackable paper-scale sweep through both the sequential runner and
  the fused ``(S·N, D)`` stacked executor), merging a ``stacked_sweep``
  section (wall-clock, steps/sec, speedup, exact-parity verdicts) into
  ``BENCH_scenarios.json``.  Runs in the nightly workflow and the per-PR
  perf job.
* ``--run-service`` — the experiment-service load benchmark
  (``benchmarks/service_load.py``: sustained concurrent submissions against
  a live :mod:`repro.service` instance over HTTP); writes
  ``BENCH_service.json`` (submit/e2e latency p50/p99) at the repo root.
  Runs in the per-PR perf job as a smoke and is compared by
  ``compare_bench.py --service-baseline/--service-current``.
* ``--write-results`` — opt-in persistence of the figure benchmarks'
  ``benchmarks/results/*.txt`` reports.  Plain test runs never touch the
  working tree; CI and result-regeneration runs pass the flag.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--run-perf",
        action="store_true",
        default=False,
        help="run the engine perf smoke benchmark (writes BENCH_engine.json)",
    )
    parser.addoption(
        "--run-scale",
        action="store_true",
        default=False,
        help="run the large-N scale sweep (merges scale_sweep into BENCH_engine.json)",
    )
    parser.addoption(
        "--run-pool",
        action="store_true",
        default=False,
        help="run the replica-pool benchmark (merges pool into BENCH_engine.json)",
    )
    parser.addoption(
        "--run-telemetry",
        action="store_true",
        default=False,
        help=(
            "run the telemetry overhead benchmark "
            "(merges telemetry into BENCH_engine.json)"
        ),
    )
    parser.addoption(
        "--run-scenarios",
        action="store_true",
        default=False,
        help="run the paper-scale scenario sweeps (writes BENCH_scenarios.json)",
    )
    parser.addoption(
        "--stacked",
        action="store_true",
        default=False,
        help=(
            "with --run-scenarios: also run the stacked-vs-sequential sweep "
            "contrast (merges stacked_sweep into BENCH_scenarios.json)"
        ),
    )
    parser.addoption(
        "--run-service",
        action="store_true",
        default=False,
        help=(
            "run the experiment-service load benchmark "
            "(benchmarks/service_load.py; writes BENCH_service.json)"
        ),
    )
    parser.addoption(
        "--write-results",
        action="store_true",
        default=False,
        help="persist figure-benchmark reports to benchmarks/results/*.txt",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "perf: engine perf-tracking benchmarks, gated behind --run-perf"
    )
    config.addinivalue_line(
        "markers", "pool: multiprocessing replica-pool tests and benchmarks"
    )
    config.addinivalue_line(
        "markers",
        "faults: fault-injection and elasticity reliability tests (repro.faults)",
    )
    # Propagate the opt-in to the benchmark helpers (the figure benchmarks
    # call save_report directly, not through a fixture).
    try:
        from benchmarks import _helpers
    except ImportError:  # benchmarks/ absent in stripped-down checkouts
        pass
    else:
        _helpers.WRITE_RESULTS = config.getoption("--write-results")
