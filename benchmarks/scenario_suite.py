"""The paper-scale scenario sweep suite (δ-sweeps at N = 64–256).

Runs every ``paper-scale``-tagged scenario from the declarative registry —
the deep-MLP and transformer δ-sweeps at N ∈ {64, 128, 256} plus the pooled
variant — through the single scenario runner, and records the outputs next
to ``BENCH_engine.json``:

* ``BENCH_scenarios.json`` (repo root) — every scenario's per-run records
  and endpoint-parity verdicts, the artifact nightly CI uploads so the
  δ-vs-LSSR/accuracy curves are tracked over time;
* ``benchmarks/results/scenarios/<name>.{txt,json}`` — human-readable
  tables and full reports, persisted only under ``--write-results`` like
  the figure benchmarks.

Each sweep is gated on the contract that makes it trustworthy: LSSR is
monotone non-decreasing in δ, spans 0 → 1, and the δ=0 / δ=max runs
reproduce the existing BSP and (never-syncing) local-SGD trainers exactly.
The suite is heavier than tier-1, so it is gated behind ``--run-scenarios``:

    PYTHONPATH=src python -m pytest benchmarks/scenario_suite.py --run-scenarios -q -s

``--stacked`` additionally runs the *stacked contrast*: every stackable
paper-scale sweep executed twice — through the sequential runner and through
the fused ``(S·N, D)`` stacked executor (:func:`repro.harness.sweep.
run_sweep_stacked`) — recording wall-clock, steps/sec and the
stacked-vs-sequential speedup as a ``stacked_sweep`` section of
``BENCH_scenarios.json``.  Exact float64 record parity between the two modes
is always asserted; the speedup gate arms only on multi-core hosts (see
``STACKED_GATE_MIN_CORES``), because on a single core the engine is
memory-bandwidth-bound and fusing has no per-layer overhead left to
amortize — the measured numbers are recorded honestly either way, and the
CI regression gate (``compare_bench.py``) tracks them over time.

The suite also runs the *fault-replay smoke*: every ``faults``-tagged
scenario from :mod:`repro.faults` (crash / straggler-burst / rejoin
schedules with deterministic-replay and loss-continuity gates), recorded as
the ``fault_replay`` section of ``BENCH_scenarios.json``.  Those records
deliberately omit wall-clock, so they are tracked but never feed the
steps/sec regression gate.

Standalone (also reachable via ``python -m benchmarks.perf_smoke
--run-scenarios [--stacked]``):

    PYTHONPATH=src python -m benchmarks.scenario_suite
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from benchmarks._helpers import save_report

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
SCENARIO_RESULTS_DIR = Path(__file__).resolve().parent / "results" / "scenarios"

#: Registry tag selecting the suite's scenarios.
SUITE_TAG = "paper-scale"

#: Registry tag selecting the fault-replay smoke scenarios (repro.faults).
FAULT_TAG = "faults"

#: The stacked speedup gate arms only on hosts with at least this many
#: cores.  Fusing S slices into one (S·N, D) pass amortizes per-layer
#: framework overhead and feeds BLAS larger matrices, but on a single
#: memory-bandwidth-bound core the per-row compute already dominates, so
#: there is nothing left to amortize (measured: ~0.7-0.9x there).  Mirrors
#: the replica-pool benchmark's conditional gate.
STACKED_GATE_MIN_CORES = 4

#: The armed gate's threshold: fused execution of the whole δ-grid must be
#: at least this much faster than S sequential runs.
STACKED_GATE_SPEEDUP = 3.0


def _sweep_names(pool: bool) -> List[str]:
    """Paper-scale scenario names, split by whether they need the pool."""
    from repro.scenarios import get_scenario, scenario_names

    names = []
    for name in scenario_names(tag=SUITE_TAG):
        uses_pool = "pool" in get_scenario(name).tags
        if uses_pool == pool:
            names.append(name)
    return names


def run_suite(names: List[str], write_results: bool = False) -> Dict[str, dict]:
    """Run the named scenarios; persist reports and return their summaries."""
    from repro.scenarios import run_scenario

    summaries: Dict[str, dict] = {}
    for name in names:
        report = run_scenario(name)
        summaries[name] = report.to_dict()
        save_report(f"scenarios/{name}", report.table(), write=write_results)
        if write_results:
            SCENARIO_RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            path = SCENARIO_RESULTS_DIR / f"{name}.json"
            path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return summaries


def merge_into_result_file(summaries: Dict[str, dict]) -> None:
    """Merge scenario summaries into ``BENCH_scenarios.json`` (keep others)."""
    report = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(summaries)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _stacked_names() -> List[str]:
    """Paper-scale sweep scenarios the stacked executor can run."""
    from repro.harness.sweep import STACKED_ALGORITHMS, STACKED_WORKLOADS
    from repro.scenarios import get_scenario, scenario_names

    names = []
    for name in scenario_names(tag=SUITE_TAG):
        scenario = get_scenario(name)
        if (
            scenario.kind == "sweep"
            and not scenario.pool_workers
            and scenario.algorithm in STACKED_ALGORITHMS
            and scenario.workload in STACKED_WORKLOADS
        ):
            names.append(name)
    return names


def _records_identical(seq: dict, stk: dict) -> bool:
    """Exact float64 parity of two scenario reports' per-run records.

    Compares every record's params and metrics (``wall_seconds`` excluded —
    it measures the runner, not the training trajectory) plus the endpoint
    parity verdicts.
    """

    def strip(report: dict):
        return [
            (
                record["params"],
                {k: v for k, v in record["metrics"].items() if k != "wall_seconds"},
            )
            for record in report["records"]
        ]

    if strip(seq) != strip(stk):
        return False
    seq_anchors = seq.get("endpoints", {})
    stk_anchors = stk.get("endpoints", {})
    if set(seq_anchors) != set(stk_anchors):
        return False
    return all(
        stk_anchors[name]["matches_sweep_endpoint"]
        and seq_anchors[name]["matches_sweep_endpoint"]
        for name in seq_anchors
    )


def run_stacked_contrast(names: Optional[List[str]] = None) -> dict:
    """Time every stackable sweep sequentially and stacked; check parity.

    Returns the ``stacked_sweep`` section merged into
    ``BENCH_scenarios.json``: per-scenario wall-clock for both modes,
    steps/sec (total trainer steps across the grid over the sweep's
    wall-clock, endpoint anchors excluded), the stacked-vs-sequential
    speedup, and the exact-parity verdict.
    """
    from repro.scenarios import get_scenario, run_scenario

    names = _stacked_names() if names is None else names
    scenarios: Dict[str, dict] = {}
    for name in names:
        scenario = get_scenario(name)
        grid_points = 1
        for values in scenario.grid.values():
            grid_points *= len(values)
        total_steps = scenario.iterations * grid_points

        start = time.perf_counter()
        sequential = run_scenario(name)
        sequential_seconds = time.perf_counter() - start
        start = time.perf_counter()
        stacked = run_scenario(name, stacked=True)
        stacked_seconds = time.perf_counter() - start

        scenarios[name] = {
            "num_workers": scenario.num_workers,
            "iterations": scenario.iterations,
            "grid_points": grid_points,
            "sequential_seconds": sequential_seconds,
            "stacked_seconds": stacked_seconds,
            "steps_per_sec": {
                "sequential": total_steps / sequential.meta["sweep_wall_seconds"],
                "stacked": total_steps / stacked.meta["sweep_wall_seconds"],
            },
            "speedup": sequential_seconds / stacked_seconds,
            "exact_parity": _records_identical(sequential.to_dict(), stacked.to_dict()),
        }
    return {
        "config": {
            "cpu_count": os.cpu_count(),
            "gate_min_cores": STACKED_GATE_MIN_CORES,
            "gate_speedup": STACKED_GATE_SPEEDUP,
            "scenarios": names,
        },
        "scenarios": scenarios,
    }


def check_stacked_contrast(section: dict) -> None:
    """Assert the stacked contrast's gates.

    Exact float64 parity between the sequential and stacked runs of every
    scenario always holds.  The speedup gate arms only on hosts with
    ``STACKED_GATE_MIN_CORES`` cores or more — single-core hosts are
    memory-bandwidth-bound, so their honest numbers are recorded without
    gating (the CI baseline comparison still flags regressions there).
    """
    for name, row in section["scenarios"].items():
        assert row["exact_parity"], (
            f"{name}: stacked run diverged from the sequential runner"
        )
    cores = os.cpu_count() or 0
    if cores >= STACKED_GATE_MIN_CORES:
        for name, row in section["scenarios"].items():
            assert row["speedup"] >= STACKED_GATE_SPEEDUP, (
                f"{name}: stacked speedup {row['speedup']:.2f}x below the "
                f"{STACKED_GATE_SPEEDUP}x gate on a {cores}-core host"
            )


def run_fault_replay_smoke(write_results: bool = False) -> dict:
    """Run every ``faults``-tagged scenario; return the ``fault_replay`` section.

    Each fault scenario already runs twice inside the runner and raises on a
    gate violation (deterministic replay, loss continuity) — this smoke
    records the verdicts and the replayable metrics in
    ``BENCH_scenarios.json`` so nightly CI tracks the reliability surface
    alongside the δ-sweeps.  Records deliberately omit wall-clock, so these
    rows never feed the steps/sec regression gate.
    """
    from repro.scenarios import run_scenario, scenario_names

    scenarios: Dict[str, dict] = {}
    for name in scenario_names(tag=FAULT_TAG):
        report = run_scenario(name)
        summary = report.to_dict()
        save_report(f"scenarios/{name}", report.table(), write=write_results)
        if write_results:
            SCENARIO_RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            path = SCENARIO_RESULTS_DIR / f"{name}.json"
            path.write_text(json.dumps(summary, indent=2) + "\n")
        meta = summary["meta"]
        scenarios[name] = {
            "workload": meta["workload"],
            "algorithm": meta["algorithm"],
            "num_workers": meta["num_workers"],
            "iterations": meta["iterations"],
            "fault_events": len(meta["fault_events"]),
            "gates": meta["gates"],
            "metrics": summary["records"][0]["metrics"],
        }
    return {"scenarios": scenarios}


def check_fault_replay(section: dict) -> None:
    """Assert every fault scenario's reliability gates passed."""
    for name, row in section["scenarios"].items():
        gates = row["gates"]
        assert gates["deterministic_replay"], (
            f"{name}: two runs with the same fault seed diverged"
        )
        assert gates["loss_continuity"], (
            f"{name}: loss continuity broken — {gates['continuity_detail']}"
        )


def check_sweep_contract(summary: dict) -> None:
    """Assert one δ-sweep's gates: monotone LSSR, full span, exact endpoints."""
    records = summary["records"]
    deltas = [r["params"]["delta"] for r in records]
    assert deltas == sorted(deltas), "runner must emit grid order"
    lssrs = [r["metrics"]["lssr"] for r in records]
    # LSSR is monotone non-decreasing in δ and spans the full [0, 1] range.
    assert all(b >= a - 1e-9 for a, b in zip(lssrs, lssrs[1:])), (
        f"{summary['name']}: LSSR not monotone in δ: {lssrs}"
    )
    assert lssrs[0] == 0.0, f"{summary['name']}: δ=0 must synchronize every step"
    assert lssrs[-1] == 1.0, f"{summary['name']}: δ=max must never synchronize"
    # The extremes reproduce the existing trainers exactly (final loss,
    # final metric and every evaluation point; see runner._exact_match).
    endpoints = summary["endpoints"]
    assert endpoints["bsp"]["matches_sweep_endpoint"], (
        f"{summary['name']}: δ=0 diverged from BSPTrainer"
    )
    assert endpoints["local_sgd"]["matches_sweep_endpoint"], (
        f"{summary['name']}: δ=max diverged from LocalSGDTrainer"
    )


@pytest.mark.perf
def test_scenario_sweep_suite(request):
    if not request.config.getoption("--run-scenarios"):
        pytest.skip("scenario sweeps run only with --run-scenarios")
    write = request.config.getoption("--write-results")
    summaries = run_suite(_sweep_names(pool=False), write_results=write)
    merge_into_result_file(summaries)
    print(f"\n[{len(summaries)} scenario reports merged into {RESULT_PATH}]")
    assert summaries, "no paper-scale scenarios registered"
    for summary in summaries.values():
        check_sweep_contract(summary)


@pytest.mark.perf
def test_stacked_sweep_contrast(request):
    if not request.config.getoption("--run-scenarios"):
        pytest.skip("scenario sweeps run only with --run-scenarios")
    if not request.config.getoption("--stacked"):
        pytest.skip("stacked contrast runs only with --run-scenarios --stacked")
    section = run_stacked_contrast()
    merge_into_result_file({"stacked_sweep": section})
    lines = []
    for name, row in section["scenarios"].items():
        lines.append(
            f"{name}: sequential {row['sequential_seconds']:.2f}s vs stacked "
            f"{row['stacked_seconds']:.2f}s ({row['speedup']:.2f}x, "
            f"parity={'exact' if row['exact_parity'] else 'BROKEN'})"
        )
    print("\n" + "\n".join(lines) + f"\n[stacked_sweep merged into {RESULT_PATH}]")
    assert section["scenarios"], "no stackable paper-scale scenarios registered"
    check_stacked_contrast(section)


@pytest.mark.perf
@pytest.mark.faults
def test_fault_replay_smoke(request):
    if not request.config.getoption("--run-scenarios"):
        pytest.skip("scenario sweeps run only with --run-scenarios")
    write = request.config.getoption("--write-results")
    section = run_fault_replay_smoke(write_results=write)
    merge_into_result_file({"fault_replay": section})
    print(
        f"\n[{len(section['scenarios'])} fault-replay rows merged into {RESULT_PATH}]"
    )
    assert section["scenarios"], "no fault scenarios registered"
    check_fault_replay(section)


@pytest.mark.perf
@pytest.mark.pool
def test_scenario_sweep_suite_pooled(request):
    if not request.config.getoption("--run-scenarios"):
        pytest.skip("scenario sweeps run only with --run-scenarios")
    write = request.config.getoption("--write-results")
    summaries = run_suite(_sweep_names(pool=True), write_results=write)
    merge_into_result_file(summaries)
    assert summaries, "no pooled paper-scale scenarios registered"
    for summary in summaries.values():
        check_sweep_contract(summary)


def main(write_results: bool = True, stacked: bool = False) -> Dict[str, dict]:
    """Standalone entry: run every paper-scale sweep and persist everything.

    ``stacked=True`` additionally runs the stacked contrast and merges its
    ``stacked_sweep`` section into ``BENCH_scenarios.json``.
    """
    names = _sweep_names(pool=False) + _sweep_names(pool=True)
    summaries = run_suite(names, write_results=write_results)
    merge_into_result_file(summaries)
    for summary in summaries.values():
        check_sweep_contract(summary)
    print(f"[{len(summaries)} scenario reports merged into {RESULT_PATH}]")
    fault_section = run_fault_replay_smoke(write_results=write_results)
    merge_into_result_file({"fault_replay": fault_section})
    check_fault_replay(fault_section)
    print(
        f"[{len(fault_section['scenarios'])} fault-replay rows merged into "
        f"{RESULT_PATH}]"
    )
    if stacked:
        section = run_stacked_contrast()
        merge_into_result_file({"stacked_sweep": section})
        for name, row in section["scenarios"].items():
            print(
                f"{name}: sequential {row['sequential_seconds']:.2f}s vs stacked "
                f"{row['stacked_seconds']:.2f}s ({row['speedup']:.2f}x)"
            )
        check_stacked_contrast(section)
    return summaries


if __name__ == "__main__":  # standalone: python -m benchmarks.scenario_suite
    main()
