"""The paper-scale scenario sweep suite (δ-sweeps at N = 64–256).

Runs every ``paper-scale``-tagged scenario from the declarative registry —
the deep-MLP and transformer δ-sweeps at N ∈ {64, 128, 256} plus the pooled
variant — through the single scenario runner, and records the outputs next
to ``BENCH_engine.json``:

* ``BENCH_scenarios.json`` (repo root) — every scenario's per-run records
  and endpoint-parity verdicts, the artifact nightly CI uploads so the
  δ-vs-LSSR/accuracy curves are tracked over time;
* ``benchmarks/results/scenarios/<name>.{txt,json}`` — human-readable
  tables and full reports, persisted only under ``--write-results`` like
  the figure benchmarks.

Each sweep is gated on the contract that makes it trustworthy: LSSR is
monotone non-decreasing in δ, spans 0 → 1, and the δ=0 / δ=max runs
reproduce the existing BSP and (never-syncing) local-SGD trainers exactly.
The suite is heavier than tier-1, so it is gated behind ``--run-scenarios``:

    PYTHONPATH=src python -m pytest benchmarks/scenario_suite.py --run-scenarios -q -s

or, standalone (also reachable via ``python -m benchmarks.perf_smoke
--run-scenarios``):

    PYTHONPATH=src python -m benchmarks.scenario_suite
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import pytest

from benchmarks._helpers import save_report

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
SCENARIO_RESULTS_DIR = Path(__file__).resolve().parent / "results" / "scenarios"

#: Registry tag selecting the suite's scenarios.
SUITE_TAG = "paper-scale"


def _sweep_names(pool: bool) -> List[str]:
    """Paper-scale scenario names, split by whether they need the pool."""
    from repro.scenarios import get_scenario, scenario_names

    names = []
    for name in scenario_names(tag=SUITE_TAG):
        uses_pool = "pool" in get_scenario(name).tags
        if uses_pool == pool:
            names.append(name)
    return names


def run_suite(names: List[str], write_results: bool = False) -> Dict[str, dict]:
    """Run the named scenarios; persist reports and return their summaries."""
    from repro.scenarios import run_scenario

    summaries: Dict[str, dict] = {}
    for name in names:
        report = run_scenario(name)
        summaries[name] = report.to_dict()
        save_report(f"scenarios/{name}", report.table(), write=write_results)
        if write_results:
            SCENARIO_RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            path = SCENARIO_RESULTS_DIR / f"{name}.json"
            path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return summaries


def merge_into_result_file(summaries: Dict[str, dict]) -> None:
    """Merge scenario summaries into ``BENCH_scenarios.json`` (keep others)."""
    report = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(summaries)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def check_sweep_contract(summary: dict) -> None:
    """Assert one δ-sweep's gates: monotone LSSR, full span, exact endpoints."""
    records = summary["records"]
    deltas = [r["params"]["delta"] for r in records]
    assert deltas == sorted(deltas), "runner must emit grid order"
    lssrs = [r["metrics"]["lssr"] for r in records]
    # LSSR is monotone non-decreasing in δ and spans the full [0, 1] range.
    assert all(b >= a - 1e-9 for a, b in zip(lssrs, lssrs[1:])), (
        f"{summary['name']}: LSSR not monotone in δ: {lssrs}"
    )
    assert lssrs[0] == 0.0, f"{summary['name']}: δ=0 must synchronize every step"
    assert lssrs[-1] == 1.0, f"{summary['name']}: δ=max must never synchronize"
    # The extremes reproduce the existing trainers exactly (final loss,
    # final metric and every evaluation point; see runner._exact_match).
    endpoints = summary["endpoints"]
    assert endpoints["bsp"]["matches_sweep_endpoint"], (
        f"{summary['name']}: δ=0 diverged from BSPTrainer"
    )
    assert endpoints["local_sgd"]["matches_sweep_endpoint"], (
        f"{summary['name']}: δ=max diverged from LocalSGDTrainer"
    )


@pytest.mark.perf
def test_scenario_sweep_suite(request):
    if not request.config.getoption("--run-scenarios"):
        pytest.skip("scenario sweeps run only with --run-scenarios")
    write = request.config.getoption("--write-results")
    summaries = run_suite(_sweep_names(pool=False), write_results=write)
    merge_into_result_file(summaries)
    print(f"\n[{len(summaries)} scenario reports merged into {RESULT_PATH}]")
    assert summaries, "no paper-scale scenarios registered"
    for summary in summaries.values():
        check_sweep_contract(summary)


@pytest.mark.perf
@pytest.mark.pool
def test_scenario_sweep_suite_pooled(request):
    if not request.config.getoption("--run-scenarios"):
        pytest.skip("scenario sweeps run only with --run-scenarios")
    write = request.config.getoption("--write-results")
    summaries = run_suite(_sweep_names(pool=True), write_results=write)
    merge_into_result_file(summaries)
    assert summaries, "no pooled paper-scale scenarios registered"
    for summary in summaries.values():
        check_sweep_contract(summary)


def main(write_results: bool = True) -> Dict[str, dict]:
    """Standalone entry: run every paper-scale sweep and persist everything."""
    names = _sweep_names(pool=False) + _sweep_names(pool=True)
    summaries = run_suite(names, write_results=write_results)
    merge_into_result_file(summaries)
    for summary in summaries.values():
        check_sweep_contract(summary)
    print(f"[{len(summaries)} scenario reports merged into {RESULT_PATH}]")
    return summaries


if __name__ == "__main__":  # standalone: python -m benchmarks.scenario_suite
    main()
