"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment once (through ``benchmark.pedantic`` so
pytest-benchmark records the wall-clock cost of regenerating it), asserts the
qualitative *shape* the paper reports, and writes the rows/series to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.

Set ``REPRO_FULL=1`` to run the full-scale versions (all four workloads,
more iterations); the default configuration is sized to finish in a few
minutes on a laptop CPU.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether to run the full (slow) benchmark configuration."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def save_report(name: str, text: str) -> Path:
    """Persist a benchmark report and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
