"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment once (through ``benchmark.pedantic`` so
pytest-benchmark records the wall-clock cost of regenerating it), asserts the
qualitative *shape* the paper reports, and echoes the rows/series so
EXPERIMENTS.md can quote them.  Persisting the report to
``benchmarks/results/<name>.txt`` is opt-in via ``pytest --write-results``
(see the root ``conftest.py``) so plain test runs never dirty the working
tree.

Set ``REPRO_FULL=1`` to run the full-scale versions (all four workloads,
more iterations); the default configuration is sized to finish in a few
minutes on a laptop CPU.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"

#: Session-wide default for report persistence; the root ``conftest.py``
#: flips this to True when pytest runs with ``--write-results``.
WRITE_RESULTS = False


def full_scale() -> bool:
    """Whether to run the full (slow) benchmark configuration."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def save_report(name: str, text: str, write: Optional[bool] = None) -> Path:
    """Echo a benchmark report; persist it only when writing is enabled.

    ``write=None`` (the default used by the figure benchmarks) defers to the
    session-wide ``--write-results`` flag.
    """
    if write is None:
        write = WRITE_RESULTS
    path = RESULTS_DIR / f"{name}.txt"
    if write:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
    else:
        print(f"\n{text}\n[not persisted; pass --write-results to update {path}]")
    return path
