"""Pytest fixtures for the benchmark suite."""

from __future__ import annotations

import pytest

from benchmarks._helpers import save_report


@pytest.fixture
def report_saver():
    return save_report
