"""Table I — BSP vs FedAvg vs SSP vs SelSync on the paper's workloads.

For every method the benchmark reports the Table-I columns: iterations run,
LSSR, best accuracy/perplexity, convergence difference vs BSP, whether it
outperforms BSP, and the overall (simulated wall-clock) speedup over BSP.

By default only the ResNet101 workload is exercised so the benchmark stays
CPU-friendly; set ``REPRO_FULL=1`` to sweep all four workloads with the
paper's full method grid.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.harness.experiment import build_cluster, build_workload, make_trainer
from repro.harness.reporting import format_table, results_to_rows, table1_headers
from repro.metrics.convergence import ConvergenceDetector


def _method_grid():
    methods = {
        "bsp": ("bsp", {}),
        "fedavg(1,0.25)": ("fedavg", {"participation": 1.0, "sync_factor": 0.25}),
        "fedavg(0.5,0.25)": ("fedavg", {"participation": 0.5, "sync_factor": 0.25}),
        "ssp(s=100)": ("ssp", {"staleness": 100}),
        "selsync(0.3)": ("selsync", {"delta": 0.3}),
        "selsync(0.5)": ("selsync", {"delta": 0.5}),
    }
    if full_scale():
        methods.update({
            "fedavg(1,0.125)": ("fedavg", {"participation": 1.0, "sync_factor": 0.125}),
            "fedavg(0.5,0.125)": ("fedavg", {"participation": 0.5, "sync_factor": 0.125}),
            "ssp(s=200)": ("ssp", {"staleness": 200}),
        })
    return methods


def _run_workload(workload: str, iterations: int, num_workers: int, seed: int = 0):
    results = {}
    for label, (algorithm, kwargs) in _method_grid().items():
        preset = build_workload(workload)
        cluster = build_cluster(preset, num_workers=num_workers, seed=seed)
        trainer = make_trainer(algorithm, cluster, preset, total_iterations=iterations,
                               eval_every=max(iterations // 8, 1), **kwargs)
        higher_is_better = preset.task != "language_modeling"
        detector = ConvergenceDetector(higher_is_better=higher_is_better, patience=4,
                                       min_delta=1e-3)
        results[label] = trainer.run(iterations, convergence=detector)
    return results


def _experiment():
    iterations = 400 if full_scale() else 160
    num_workers = 16 if full_scale() else 4
    workloads = ["resnet101", "vgg11", "alexnet", "transformer"] if full_scale() else ["resnet101"]
    return {w: _run_workload(w, iterations, num_workers) for w in workloads}


@pytest.mark.benchmark(group="table1")
def test_table1_method_comparison(benchmark):
    all_results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    reports = []
    for workload, results in all_results.items():
        rows = results_to_rows(results, baseline_key="bsp")
        reports.append(format_table(table1_headers(), rows,
                                    title=f"Table I — {workload}"))
    save_report("table1_comparison", "\n\n".join(reports))

    for workload, results in all_results.items():
        bsp = results["bsp"]
        sel_03 = results["selsync(0.3)"]
        sel_05 = results["selsync(0.5)"]
        higher = bsp.higher_is_better

        def at_least_bsp(result, slack):
            if higher:
                return result.best_metric >= bsp.best_metric - slack
            return result.best_metric <= bsp.best_metric * (1 + slack)

        # SelSync reaches BSP-level quality with substantial communication
        # savings and a wall-clock speedup over BSP.
        for sel in (sel_03, sel_05):
            assert at_least_bsp(sel, 0.03)
            assert sel.lssr > 0.2
            assert sel.speedup_over(bsp) > 1.0
        # BSP performs the most work per step, so it never needs more
        # iterations than the semi-synchronous methods here.
        assert bsp.iterations <= max(r.iterations for r in results.values())
