"""Table I — BSP vs FedAvg vs SSP vs SelSync on the paper's workloads.

For every method the benchmark reports the Table-I columns: iterations run,
LSSR, best accuracy/perplexity, convergence difference vs BSP, whether it
outperforms BSP, and the overall (simulated wall-clock) speedup over BSP.
The method grids and workload lists live in the ``table1-comparison`` /
``table1-comparison-full`` entries of the scenario registry.

By default only the ResNet101 workload is exercised so the benchmark stays
CPU-friendly; set ``REPRO_FULL=1`` to run the full-scale scenario (all four
workloads, the paper's full method grid).
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.scenarios import run_scenario


def _experiment():
    if full_scale():
        return run_scenario("table1-comparison-full")
    return run_scenario("table1-comparison")


@pytest.mark.benchmark(group="table1")
def test_table1_method_comparison(benchmark):
    report = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_report("table1_comparison", report.table())

    for workload in report.meta["workloads"]:
        bsp = report.results[f"{workload}/bsp"]
        sel_03 = report.results[f"{workload}/selsync(0.3)"]
        sel_05 = report.results[f"{workload}/selsync(0.5)"]
        higher = bsp.higher_is_better

        def at_least_bsp(result, slack):
            if higher:
                return result.best_metric >= bsp.best_metric - slack
            return result.best_metric <= bsp.best_metric * (1 + slack)

        # SelSync reaches BSP-level quality with substantial communication
        # savings and a wall-clock speedup over BSP.
        for sel in (sel_03, sel_05):
            assert at_least_bsp(sel, 0.03)
            assert sel.lssr > 0.2
            assert sel.speedup_over(bsp) > 1.0
        # BSP performs the most work per step, so it never needs more
        # iterations than the semi-synchronous methods here.
        all_results = [
            report.results[f"{workload}/{label}"] for label in report.meta["methods"]
        ]
        assert bsp.iterations <= max(r.iterations for r in all_results)
