"""Engine micro-benchmark: simulator steps/sec for BSP and SelSync.

Unlike the figure benchmarks (which regenerate paper results), this file
tracks the *simulator's own* per-step overhead — the quantity the flat-buffer
engine optimizes — so future PRs can see the perf trajectory.  It is gated
behind ``--run-perf`` to keep tier-1 fast:

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py --run-perf -q -s

The run writes ``BENCH_engine.json`` at the repo root with the measured
steps/sec next to the recorded pre-refactor baseline (measured at the seed
commit with this exact harness and configuration).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

#: Benchmark configuration: N=8 workers on an 8-layer MLP analog.  Deep and
#: narrow on purpose — per-tensor framework overhead (the engine's target) is
#: proportional to layer count, while the raw matmul work stays small.
NUM_WORKERS = 8
BATCH_SIZE = 16
MLP_SIZES = (32, 48, 48, 48, 48, 48, 48, 8)
DELTA = 0.05
STEPS = 200
WARMUP = 20
REPEATS = 5

#: Steps/sec of this exact harness at the pre-refactor seed commit
#: (8f9a305, dict-of-named-arrays hot path), recorded when the engine
#: landed.  Used as the denominator for the speedup gate below.
BASELINE_STEPS_PER_SEC = {"bsp": 208.0, "selsync": 194.6}

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def build_cluster(seed: int = 0):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_classification_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import MLP
    from repro.optim.sgd import SGD

    train, test = make_classification_splits(
        2048, 256, MLP_SIZES[-1], MLP_SIZES[0], class_sep=3.0, noise=0.6, seed=seed
    )
    config = ClusterConfig(num_workers=NUM_WORKERS, batch_size=BATCH_SIZE, seed=seed)
    return SimulatedCluster(
        model_factory=lambda rng: MLP(MLP_SIZES, rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def _make_trainer(name: str, cluster):
    if name == "bsp":
        from repro.algorithms.bsp import BSPTrainer

        return BSPTrainer(cluster, eval_every=10_000)
    from repro.core.config import SelSyncConfig
    from repro.core.selsync import SelSyncTrainer

    return SelSyncTrainer(cluster, SelSyncConfig(delta=DELTA), eval_every=10_000)


def measure_steps_per_sec(name: str) -> float:
    """Best-of-``REPEATS`` steady-state training steps per wall-clock second."""
    best = 0.0
    for _ in range(REPEATS):
        cluster = build_cluster()
        trainer = _make_trainer(name, cluster)
        for _ in range(WARMUP):
            trainer.train_step()
            trainer.global_step += 1
            cluster.global_step = trainer.global_step
        start = time.perf_counter()
        for _ in range(STEPS):
            trainer.train_step()
            trainer.global_step += 1
            cluster.global_step = trainer.global_step
        best = max(best, STEPS / (time.perf_counter() - start))
    return best


def run_benchmark() -> dict:
    current = {name: measure_steps_per_sec(name) for name in ("bsp", "selsync")}
    return {
        "config": {
            "num_workers": NUM_WORKERS,
            "batch_size": BATCH_SIZE,
            "mlp_sizes": list(MLP_SIZES),
            "delta": DELTA,
            "steps": STEPS,
            "warmup": WARMUP,
            "repeats": REPEATS,
        },
        "baseline_steps_per_sec": BASELINE_STEPS_PER_SEC,
        "current_steps_per_sec": current,
        "speedup_over_baseline": {
            name: current[name] / BASELINE_STEPS_PER_SEC[name] for name in current
        },
    }


@pytest.mark.perf
def test_perf_smoke(request):
    if not request.config.getoption("--run-perf"):
        pytest.skip("perf smoke runs only with --run-perf")
    report = run_benchmark()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    lines = [
        f"{name}: {report['current_steps_per_sec'][name]:.0f} steps/s "
        f"({report['speedup_over_baseline'][name]:.2f}x over seed baseline)"
        for name in report["current_steps_per_sec"]
    ]
    print("\n" + "\n".join(lines) + f"\n[saved to {RESULT_PATH}]")
    # The engine milestone's acceptance gate: >= 3x over the seed hot path.
    assert report["speedup_over_baseline"]["selsync"] >= 3.0
    assert report["speedup_over_baseline"]["bsp"] >= 3.0


if __name__ == "__main__":  # standalone: python benchmarks/perf_smoke.py
    print(json.dumps(run_benchmark(), indent=2))
