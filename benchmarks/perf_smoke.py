"""Engine micro-benchmark: simulator steps/sec for BSP and SelSync.

Unlike the figure benchmarks (which regenerate paper results), this file
tracks the *simulator's own* per-step overhead — the quantity the flat-buffer
engine optimizes — so future PRs can see the perf trajectory.  It is gated
behind ``--run-perf`` to keep tier-1 fast:

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py --run-perf -q -s

The run writes ``BENCH_engine.json`` at the repo root with three sections:

* ``current_steps_per_sec`` — BSP / SelSync on the deep-narrow N=8 MLP loop,
  gated at >= 3x over the recorded pre-engine seed baseline;
* ``dtype_mode`` — float32 vs float64 BSP steps/sec on a compute-dominated
  N=8 MLP (wide layers, so BLAS width rather than Python overhead sets the
  pace), gated at float32 >= 1.5x float64;
* ``fused_adam`` — BSP steps/sec with every worker on Adam (the fused (N, D)
  moment-matrix path) in both dtypes, recorded for trend tracking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

#: Benchmark configuration: N=8 workers on an 8-layer MLP analog.  Deep and
#: narrow on purpose — per-tensor framework overhead (the engine's target) is
#: proportional to layer count, while the raw matmul work stays small.
NUM_WORKERS = 8
BATCH_SIZE = 16
MLP_SIZES = (32, 48, 48, 48, 48, 48, 48, 8)
DELTA = 0.05
STEPS = 200
WARMUP = 20
REPEATS = 5

#: Dtype-mode configuration: same N=8 cluster, but wide layers so the step is
#: compute-dominated and the float32/float64 contrast measures arithmetic
#: width instead of Python overhead.
DTYPE_MLP_SIZES = (64, 512, 512, 8)
DTYPE_BATCH_SIZE = 32
DTYPE_STEPS = 100
DTYPE_WARMUP = 10
DTYPE_REPEATS = 3

#: Steps/sec of this exact harness at the pre-refactor seed commit
#: (8f9a305, dict-of-named-arrays hot path), recorded when the engine
#: landed.  Used as the denominator for the speedup gate below.
BASELINE_STEPS_PER_SEC = {"bsp": 208.0, "selsync": 194.6}

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def build_cluster(
    seed: int = 0,
    dtype: str = "float64",
    optimizer: str = "sgd",
    mlp_sizes=MLP_SIZES,
    batch_size: int = BATCH_SIZE,
):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_classification_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import MLP
    from repro.optim.adam import Adam
    from repro.optim.sgd import SGD

    train, test = make_classification_splits(
        2048, 256, mlp_sizes[-1], mlp_sizes[0], class_sep=3.0, noise=0.6, seed=seed
    )
    config = ClusterConfig(
        num_workers=NUM_WORKERS, batch_size=batch_size, seed=seed, dtype=dtype
    )
    if optimizer == "sgd":
        optimizer_factory = lambda m: SGD(m, lr=0.05, momentum=0.9)  # noqa: E731
    else:
        optimizer_factory = lambda m: Adam(m, lr=1e-3)  # noqa: E731
    return SimulatedCluster(
        model_factory=lambda rng: MLP(mlp_sizes, rng=rng),
        optimizer_factory=optimizer_factory,
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def _make_trainer(name: str, cluster):
    if name == "bsp":
        from repro.algorithms.bsp import BSPTrainer

        return BSPTrainer(cluster, eval_every=10_000)
    from repro.core.config import SelSyncConfig
    from repro.core.selsync import SelSyncTrainer

    return SelSyncTrainer(cluster, SelSyncConfig(delta=DELTA), eval_every=10_000)


def _time_trainer(cluster, trainer, steps: int, warmup: int) -> float:
    for _ in range(warmup):
        trainer.train_step()
        trainer.global_step += 1
        cluster.global_step = trainer.global_step
    start = time.perf_counter()
    for _ in range(steps):
        trainer.train_step()
        trainer.global_step += 1
        cluster.global_step = trainer.global_step
    return steps / (time.perf_counter() - start)


def measure_steps_per_sec(name: str) -> float:
    """Best-of-``REPEATS`` steady-state training steps per wall-clock second."""
    best = 0.0
    for _ in range(REPEATS):
        cluster = build_cluster()
        trainer = _make_trainer(name, cluster)
        best = max(best, _time_trainer(cluster, trainer, STEPS, WARMUP))
    return best


def measure_variant(dtype: str, optimizer: str, mlp_sizes, batch_size: int) -> float:
    """Best-of-``DTYPE_REPEATS`` BSP steps/sec for one engine configuration."""
    best = 0.0
    for _ in range(DTYPE_REPEATS):
        cluster = build_cluster(
            dtype=dtype, optimizer=optimizer, mlp_sizes=mlp_sizes, batch_size=batch_size
        )
        trainer = _make_trainer("bsp", cluster)
        best = max(best, _time_trainer(cluster, trainer, DTYPE_STEPS, DTYPE_WARMUP))
    return best


def run_benchmark() -> dict:
    current = {name: measure_steps_per_sec(name) for name in ("bsp", "selsync")}
    dtype_mode = {
        dtype: measure_variant(dtype, "sgd", DTYPE_MLP_SIZES, DTYPE_BATCH_SIZE)
        for dtype in ("float64", "float32")
    }
    fused_adam = {
        dtype: measure_variant(dtype, "adam", MLP_SIZES, BATCH_SIZE)
        for dtype in ("float64", "float32")
    }
    return {
        "config": {
            "num_workers": NUM_WORKERS,
            "batch_size": BATCH_SIZE,
            "mlp_sizes": list(MLP_SIZES),
            "delta": DELTA,
            "steps": STEPS,
            "warmup": WARMUP,
            "repeats": REPEATS,
            "dtype_mlp_sizes": list(DTYPE_MLP_SIZES),
            "dtype_batch_size": DTYPE_BATCH_SIZE,
            "dtype_steps": DTYPE_STEPS,
            "dtype_repeats": DTYPE_REPEATS,
        },
        "baseline_steps_per_sec": BASELINE_STEPS_PER_SEC,
        "current_steps_per_sec": current,
        "speedup_over_baseline": {
            name: current[name] / BASELINE_STEPS_PER_SEC[name] for name in current
        },
        "dtype_mode": {
            "steps_per_sec": dtype_mode,
            "float32_speedup_over_float64": dtype_mode["float32"] / dtype_mode["float64"],
        },
        "fused_adam": {
            "steps_per_sec": fused_adam,
            "float32_speedup_over_float64": fused_adam["float32"] / fused_adam["float64"],
        },
    }


@pytest.mark.perf
def test_perf_smoke(request):
    if not request.config.getoption("--run-perf"):
        pytest.skip("perf smoke runs only with --run-perf")
    report = run_benchmark()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    lines = [
        f"{name}: {report['current_steps_per_sec'][name]:.0f} steps/s "
        f"({report['speedup_over_baseline'][name]:.2f}x over seed baseline)"
        for name in report["current_steps_per_sec"]
    ]
    dtype_mode = report["dtype_mode"]
    lines.append(
        "dtype mode (wide MLP): "
        + ", ".join(
            f"{d}: {dtype_mode['steps_per_sec'][d]:.0f} steps/s"
            for d in ("float64", "float32")
        )
        + f" ({dtype_mode['float32_speedup_over_float64']:.2f}x)"
    )
    fused_adam = report["fused_adam"]
    lines.append(
        "fused Adam: "
        + ", ".join(
            f"{d}: {fused_adam['steps_per_sec'][d]:.0f} steps/s"
            for d in ("float64", "float32")
        )
        + f" ({fused_adam['float32_speedup_over_float64']:.2f}x)"
    )
    print("\n" + "\n".join(lines) + f"\n[saved to {RESULT_PATH}]")
    # The engine milestone's acceptance gate: >= 3x over the seed hot path.
    assert report["speedup_over_baseline"]["selsync"] >= 3.0
    assert report["speedup_over_baseline"]["bsp"] >= 3.0
    # The dtype milestone's acceptance gate: float32 >= 1.5x float64 on the
    # compute-dominated N=8 MLP loop.
    assert dtype_mode["float32_speedup_over_float64"] >= 1.5


if __name__ == "__main__":  # standalone: python benchmarks/perf_smoke.py
    print(json.dumps(run_benchmark(), indent=2))
