"""Engine micro-benchmark: simulator steps/sec for BSP and SelSync.

Unlike the figure benchmarks (which regenerate paper results), this file
tracks the *simulator's own* per-step overhead — the quantity the flat-buffer
engine optimizes — so future PRs can see the perf trajectory.  It is gated
behind ``--run-perf`` to keep tier-1 fast:

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py --run-perf -q -s

The run merges sections into ``BENCH_engine.json`` at the repo root:

* ``current_steps_per_sec`` — BSP / SelSync on the deep-narrow N=8 MLP loop,
  gated at >= 3x over the recorded pre-engine seed baseline;
* ``dtype_mode`` — float32 vs float64 BSP steps/sec on a compute-dominated
  N=8 MLP (wide layers, so BLAS width rather than Python overhead sets the
  pace), gated at float32 >= 1.5x float64;
* ``fused_adam`` — BSP steps/sec with every worker on Adam (the fused (N, D)
  moment-matrix path) in both dtypes, recorded for trend tracking.

``--run-scale`` additionally (or independently) merges a ``scale_sweep``
section: BSP steps/sec for N in {8, 64, 128, 256} on the MLP and
transformer analogs, plus the batched-vs-per-worker transformer contrast at
N=8 (gated at >= 3x — the transformer ``BatchedReplicaExecutor`` milestone).
The sweep is heavier than the smoke, so per-PR CI runs only ``--run-perf``
and the nightly workflow runs ``--run-scale``:

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py --run-scale -q -s

``--run-pool`` merges a ``pool`` section: the multiprocessing replica pool
vs the single-process engine on the per-worker-fallback ConvNet loop at
N=64 (the models-too-heavy-to-batch scenario the pool targets), gated at
>= 1.5x with ``pool_workers=4`` when the host has enough cores.  A
bit-identical parity check always runs.  Nightly CI owns this section:

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py --run-pool -q -s

``--run-telemetry`` merges a ``telemetry`` section: the deep-narrow BSP loop
measured with the telemetry helpers monkeypatched out (baseline), with the
shipped disabled no-op path, and with tracing + metrics fully enabled, gated
at disabled <= 2% and enabled <= 10% overhead versus baseline.  Runs in the
per-PR perf job:

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py --run-telemetry -q -s

``--run-scenarios`` runs the paper-scale δ-sweep suite from the declarative
scenario registry (``benchmarks/scenario_suite.py``), recording sweep
outputs in ``BENCH_scenarios.json`` next to this file's
``BENCH_engine.json``.  ``--stacked`` additionally runs the suite's
stacked-vs-sequential contrast (the fused ``(S·N, D)`` sweep executor
against S sequential runs, with exact-parity gating), merging a
``stacked_sweep`` section into ``BENCH_scenarios.json``.  Standalone
invocation accepts the same flags:

    PYTHONPATH=src python -m benchmarks.perf_smoke --run-scenarios --stacked
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

#: Benchmark configuration: N=8 workers on an 8-layer MLP analog.  Deep and
#: narrow on purpose — per-tensor framework overhead (the engine's target) is
#: proportional to layer count, while the raw matmul work stays small.
NUM_WORKERS = 8
BATCH_SIZE = 16
MLP_SIZES = (32, 48, 48, 48, 48, 48, 48, 8)
DELTA = 0.05
STEPS = 200
WARMUP = 20
REPEATS = 5

#: Dtype-mode configuration: same N=8 cluster, but wide layers so the step is
#: compute-dominated and the float32/float64 contrast measures arithmetic
#: width instead of Python overhead.
DTYPE_MLP_SIZES = (64, 512, 512, 8)
DTYPE_BATCH_SIZE = 32
DTYPE_STEPS = 100
DTYPE_WARMUP = 10
DTYPE_REPEATS = 3

#: Steps/sec of this exact harness at the pre-refactor seed commit
#: (8f9a305, dict-of-named-arrays hot path), recorded when the engine
#: landed.  Used as the denominator for the speedup gate below.
BASELINE_STEPS_PER_SEC = {"bsp": 208.0, "selsync": 194.6}

#: Scale-sweep configuration.  Small per-step tensors on purpose (like the
#: deep-narrow MLP above): the sweep measures how the engine's per-step
#: framework cost scales with the cluster size, and large-N clusters are
#: exactly where per-worker Python overhead used to dominate.
SCALE_WORKERS = (8, 64, 128, 256)
SCALE_MLP_SIZES = (32, 48, 48, 8)
SCALE_MLP_BATCH = 4
SCALE_LM = dict(
    vocab_size=32, d_model=16, num_heads=2, num_layers=3, dim_feedforward=32, max_len=64
)
SCALE_LM_BATCH = 2
SCALE_LM_BPTT = 8
#: Measured steps shrink with N (per-step cost grows roughly linearly).
SCALE_STEPS = {8: 40, 64: 16, 128: 10, 256: 6}
SCALE_WARMUP = {8: 6, 64: 3, 128: 2, 256: 2}
SCALE_REPEATS = 2

#: Replica-pool benchmark configuration.  ConvNet at N=64 with the batched
#: executor disabled everywhere: per-replica convolution cost dominates the
#: step, which is exactly the workload the process pool exists to shard.
POOL_WORKERS = 4
POOL_N = 64
POOL_BATCH = 8
POOL_IMAGE = 8
POOL_CHANNELS = (4, 8)
POOL_CLASSES = 4
POOL_STEPS = 12
POOL_WARMUP = 2
POOL_REPEATS = 2

#: Telemetry-overhead configuration: the deep-narrow N=8 BSP MLP loop run in
#: three modes, interleaved within each repeat so machine drift hits every
#: mode equally.  "baseline" monkeypatches the telemetry helpers out entirely
#: (not even a flag check at the call sites), "disabled" is the shipped
#: default (flag-check no-op path), "enabled" turns on tracing + metrics with
#: spans buffered in memory (no sink I/O).
TELEMETRY_STEPS = 150
TELEMETRY_WARMUP = 15
TELEMETRY_REPEATS = 5
#: Acceptance gates: disabled telemetry <= 2% below baseline, enabled <= 10%.
TELEMETRY_DISABLED_GATE = 0.02
TELEMETRY_ENABLED_GATE = 0.10

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _merge_into_result_file(sections: dict) -> dict:
    """Overwrite ``sections`` inside BENCH_engine.json, keeping the others.

    The perf smoke and the scale sweep run in different CI jobs; each owns
    its own top-level sections and must not clobber the other's.
    """
    report = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(sections)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def build_cluster(
    seed: int = 0,
    dtype: str = "float64",
    optimizer: str = "sgd",
    mlp_sizes=MLP_SIZES,
    batch_size: int = BATCH_SIZE,
):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_classification_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import MLP
    from repro.optim.adam import Adam
    from repro.optim.sgd import SGD

    train, test = make_classification_splits(
        2048, 256, mlp_sizes[-1], mlp_sizes[0], class_sep=3.0, noise=0.6, seed=seed
    )
    config = ClusterConfig(
        num_workers=NUM_WORKERS, batch_size=batch_size, seed=seed, dtype=dtype
    )
    if optimizer == "sgd":
        optimizer_factory = lambda m: SGD(m, lr=0.05, momentum=0.9)  # noqa: E731
    else:
        optimizer_factory = lambda m: Adam(m, lr=1e-3)  # noqa: E731
    return SimulatedCluster(
        model_factory=lambda rng: MLP(mlp_sizes, rng=rng),
        optimizer_factory=optimizer_factory,
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def build_scale_mlp_cluster(num_workers: int, seed: int = 0):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_classification_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import MLP
    from repro.optim.sgd import SGD

    samples = max(2 * num_workers * SCALE_MLP_BATCH, 2048)
    train, test = make_classification_splits(
        samples, 256, SCALE_MLP_SIZES[-1], SCALE_MLP_SIZES[0], class_sep=3.0, noise=0.6, seed=seed
    )
    config = ClusterConfig(num_workers=num_workers, batch_size=SCALE_MLP_BATCH, seed=seed)
    return SimulatedCluster(
        model_factory=lambda rng: MLP(SCALE_MLP_SIZES, rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def build_scale_lm_cluster(num_workers: int, seed: int = 0):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_sequence_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import TransformerLM
    from repro.optim.sgd import SGD

    tokens = max(2 * num_workers * SCALE_LM_BATCH * SCALE_LM_BPTT, 4096)
    train, test = make_sequence_splits(
        tokens, 512, SCALE_LM["vocab_size"], bptt=SCALE_LM_BPTT, seed=seed
    )
    config = ClusterConfig(
        num_workers=num_workers,
        batch_size=SCALE_LM_BATCH,
        seed=seed,
        task="language_modeling",
        workload="transformer",
    )
    return SimulatedCluster(
        model_factory=lambda rng: TransformerLM(dropout=0.0, rng=rng, **SCALE_LM),
        optimizer_factory=lambda m: SGD(m, lr=0.1),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def _make_trainer(name: str, cluster):
    if name == "bsp":
        from repro.algorithms.bsp import BSPTrainer

        return BSPTrainer(cluster, eval_every=10_000)
    from repro.core.config import SelSyncConfig
    from repro.core.selsync import SelSyncTrainer

    return SelSyncTrainer(cluster, SelSyncConfig(delta=DELTA), eval_every=10_000)


def _time_trainer(cluster, trainer, steps: int, warmup: int) -> float:
    for _ in range(warmup):
        trainer.train_step()
        trainer.global_step += 1
        cluster.global_step = trainer.global_step
    start = time.perf_counter()
    for _ in range(steps):
        trainer.train_step()
        trainer.global_step += 1
        cluster.global_step = trainer.global_step
    return steps / (time.perf_counter() - start)


def measure_steps_per_sec(name: str) -> float:
    """Best-of-``REPEATS`` steady-state training steps per wall-clock second."""
    best = 0.0
    for _ in range(REPEATS):
        cluster = build_cluster()
        trainer = _make_trainer(name, cluster)
        best = max(best, _time_trainer(cluster, trainer, STEPS, WARMUP))
    return best


def measure_variant(dtype: str, optimizer: str, mlp_sizes, batch_size: int) -> float:
    """Best-of-``DTYPE_REPEATS`` BSP steps/sec for one engine configuration."""
    best = 0.0
    for _ in range(DTYPE_REPEATS):
        cluster = build_cluster(
            dtype=dtype, optimizer=optimizer, mlp_sizes=mlp_sizes, batch_size=batch_size
        )
        trainer = _make_trainer("bsp", cluster)
        best = max(best, _time_trainer(cluster, trainer, DTYPE_STEPS, DTYPE_WARMUP))
    return best


def measure_scale_point(build, num_workers: int, disable_executor: bool = False) -> float:
    """Best-of-``SCALE_REPEATS`` BSP steps/sec for one cluster size."""
    best = 0.0
    for _ in range(SCALE_REPEATS):
        cluster = build(num_workers)
        if disable_executor:
            cluster.replica_exec = None
        trainer = _make_trainer("bsp", cluster)
        best = max(
            best,
            _time_trainer(
                cluster, trainer, SCALE_STEPS[num_workers], SCALE_WARMUP[num_workers]
            ),
        )
    return best


def run_scale_sweep() -> dict:
    """N in {8..256} BSP steps/sec on the MLP and transformer analogs."""
    mlp = {
        str(n): measure_scale_point(build_scale_mlp_cluster, n) for n in SCALE_WORKERS
    }
    transformer = {
        str(n): measure_scale_point(build_scale_lm_cluster, n) for n in SCALE_WORKERS
    }
    # Batched-executor contrast: the same transformer cluster forced onto the
    # per-worker fallback loop at N=8 (the milestone's gate denominator).
    per_worker_n8 = measure_scale_point(
        build_scale_lm_cluster, 8, disable_executor=True
    )
    return {
        "config": {
            "workers": list(SCALE_WORKERS),
            "mlp_sizes": list(SCALE_MLP_SIZES),
            "mlp_batch_size": SCALE_MLP_BATCH,
            "transformer": dict(SCALE_LM),
            "transformer_batch_size": SCALE_LM_BATCH,
            "transformer_bptt": SCALE_LM_BPTT,
            "steps": {str(n): SCALE_STEPS[n] for n in SCALE_WORKERS},
            "repeats": SCALE_REPEATS,
        },
        "steps_per_sec": {"mlp": mlp, "transformer": transformer},
        "transformer_per_worker_n8_steps_per_sec": per_worker_n8,
        "transformer_batched_speedup_n8": transformer["8"] / per_worker_n8,
    }


def build_pool_cluster(num_workers: int = POOL_N, pool_workers: int = 0, seed: int = 0):
    from repro.cluster.cluster import ClusterConfig, SimulatedCluster
    from repro.data.datasets import make_image_splits
    from repro.data.partition import SelSyncPartitioner
    from repro.nn.models import ConvNet
    from repro.optim.sgd import SGD

    samples = max(2 * num_workers * POOL_BATCH, 2048)
    train, test = make_image_splits(
        samples, 256, POOL_CLASSES, in_channels=1, image_size=POOL_IMAGE, seed=seed
    )
    config = ClusterConfig(
        num_workers=num_workers, batch_size=POOL_BATCH, seed=seed, pool_workers=pool_workers
    )
    cluster = SimulatedCluster(
        model_factory=lambda rng: ConvNet(
            in_channels=1,
            num_classes=POOL_CLASSES,
            image_size=POOL_IMAGE,
            channels=POOL_CHANNELS,
            rng=rng,
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )
    # Per-worker-fallback contrast: both sides run the per-replica loop (the
    # models-too-heavy-to-batch regime), in-process vs sharded over the pool.
    cluster.replica_exec = None
    if cluster.pool is not None:
        cluster.pool.set_use_executor(False)
    return cluster


def measure_pool_point(pool_workers: int) -> float:
    """Best-of-``POOL_REPEATS`` BSP steps/sec for one pool configuration."""
    best = 0.0
    for _ in range(POOL_REPEATS):
        cluster = build_pool_cluster(pool_workers=pool_workers)
        try:
            trainer = _make_trainer("bsp", cluster)
            best = max(best, _time_trainer(cluster, trainer, POOL_STEPS, POOL_WARMUP))
        finally:
            cluster.close()
    return best


def check_pool_parity(steps: int = 3) -> bool:
    """Bit-identical float64 parity of the pooled vs single-process loop."""
    import numpy as np

    matrices = []
    for pool_workers in (0, POOL_WORKERS):
        cluster = build_pool_cluster(pool_workers=pool_workers, seed=1)
        try:
            trainer = _make_trainer("bsp", cluster)
            for _ in range(steps):
                trainer.train_step()
                trainer.global_step += 1
                cluster.global_step = trainer.global_step
            matrices.append(cluster.matrix.params.copy())
        finally:
            cluster.close()
    return bool(np.array_equal(matrices[0], matrices[1]))


def run_pool_benchmark() -> dict:
    import os

    single = measure_pool_point(0)
    pooled = measure_pool_point(POOL_WORKERS)
    return {
        "config": {
            "num_workers": POOL_N,
            "pool_workers": POOL_WORKERS,
            "batch_size": POOL_BATCH,
            "image_size": POOL_IMAGE,
            "channels": list(POOL_CHANNELS),
            "steps": POOL_STEPS,
            "repeats": POOL_REPEATS,
            "cpu_count": os.cpu_count(),
        },
        "steps_per_sec": {
            "convnet_fallback_single_process": single,
            f"convnet_fallback_pool_{POOL_WORKERS}": pooled,
        },
        "pool_speedup": pooled / single,
        "parity_bit_identical": check_pool_parity(),
    }


def run_telemetry_benchmark() -> dict:
    """Baseline / disabled / enabled telemetry steps/sec on the BSP loop."""
    from repro import telemetry

    def run_once() -> float:
        cluster = build_cluster()
        trainer = _make_trainer("bsp", cluster)
        return _time_trainer(cluster, trainer, TELEMETRY_STEPS, TELEMETRY_WARMUP)

    def run_baseline() -> float:
        # The instrumented hot paths call these module attributes, so
        # swapping them out measures the loop as if never instrumented.
        saved = (telemetry.span, telemetry.count, telemetry.observe, telemetry.gauge)
        telemetry.span = lambda name: telemetry.NULL_SPAN
        telemetry.count = telemetry.observe = telemetry.gauge = lambda *a, **k: None
        try:
            return run_once()
        finally:
            telemetry.span, telemetry.count, telemetry.observe, telemetry.gauge = saved

    def run_enabled() -> float:
        telemetry.configure(tracing=True, metrics=True, trace_file=None)
        try:
            return run_once()
        finally:
            telemetry.reset()

    best = {"baseline": 0.0, "disabled": 0.0, "enabled": 0.0}
    for _ in range(TELEMETRY_REPEATS):
        best["baseline"] = max(best["baseline"], run_baseline())
        telemetry.reset()
        best["disabled"] = max(best["disabled"], run_once())
        best["enabled"] = max(best["enabled"], run_enabled())
    disabled_overhead = max(0.0, (best["baseline"] - best["disabled"]) / best["baseline"])
    enabled_overhead = max(0.0, (best["baseline"] - best["enabled"]) / best["baseline"])
    return {
        "config": {
            "num_workers": NUM_WORKERS,
            "batch_size": BATCH_SIZE,
            "mlp_sizes": list(MLP_SIZES),
            "steps": TELEMETRY_STEPS,
            "warmup": TELEMETRY_WARMUP,
            "repeats": TELEMETRY_REPEATS,
        },
        "steps_per_sec": best,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
    }


def run_benchmark() -> dict:
    current = {name: measure_steps_per_sec(name) for name in ("bsp", "selsync")}
    dtype_mode = {
        dtype: measure_variant(dtype, "sgd", DTYPE_MLP_SIZES, DTYPE_BATCH_SIZE)
        for dtype in ("float64", "float32")
    }
    fused_adam = {
        dtype: measure_variant(dtype, "adam", MLP_SIZES, BATCH_SIZE)
        for dtype in ("float64", "float32")
    }
    return {
        "config": {
            "num_workers": NUM_WORKERS,
            "batch_size": BATCH_SIZE,
            "mlp_sizes": list(MLP_SIZES),
            "delta": DELTA,
            "steps": STEPS,
            "warmup": WARMUP,
            "repeats": REPEATS,
            "dtype_mlp_sizes": list(DTYPE_MLP_SIZES),
            "dtype_batch_size": DTYPE_BATCH_SIZE,
            "dtype_steps": DTYPE_STEPS,
            "dtype_repeats": DTYPE_REPEATS,
        },
        "baseline_steps_per_sec": BASELINE_STEPS_PER_SEC,
        "current_steps_per_sec": current,
        "speedup_over_baseline": {
            name: current[name] / BASELINE_STEPS_PER_SEC[name] for name in current
        },
        "dtype_mode": {
            "steps_per_sec": dtype_mode,
            "float32_speedup_over_float64": dtype_mode["float32"] / dtype_mode["float64"],
        },
        "fused_adam": {
            "steps_per_sec": fused_adam,
            "float32_speedup_over_float64": fused_adam["float32"] / fused_adam["float64"],
        },
    }


@pytest.mark.perf
def test_perf_smoke(request):
    if not request.config.getoption("--run-perf"):
        pytest.skip("perf smoke runs only with --run-perf")
    report = run_benchmark()
    _merge_into_result_file(report)
    lines = [
        f"{name}: {report['current_steps_per_sec'][name]:.0f} steps/s "
        f"({report['speedup_over_baseline'][name]:.2f}x over seed baseline)"
        for name in report["current_steps_per_sec"]
    ]
    dtype_mode = report["dtype_mode"]
    lines.append(
        "dtype mode (wide MLP): "
        + ", ".join(
            f"{d}: {dtype_mode['steps_per_sec'][d]:.0f} steps/s"
            for d in ("float64", "float32")
        )
        + f" ({dtype_mode['float32_speedup_over_float64']:.2f}x)"
    )
    fused_adam = report["fused_adam"]
    lines.append(
        "fused Adam: "
        + ", ".join(
            f"{d}: {fused_adam['steps_per_sec'][d]:.0f} steps/s"
            for d in ("float64", "float32")
        )
        + f" ({fused_adam['float32_speedup_over_float64']:.2f}x)"
    )
    print("\n" + "\n".join(lines) + f"\n[saved to {RESULT_PATH}]")
    # The engine milestone's acceptance gate: >= 3x over the seed hot path.
    assert report["speedup_over_baseline"]["selsync"] >= 3.0
    assert report["speedup_over_baseline"]["bsp"] >= 3.0
    # The dtype milestone's acceptance gate: float32 >= 1.5x float64 on the
    # compute-dominated N=8 MLP loop.
    assert dtype_mode["float32_speedup_over_float64"] >= 1.5


@pytest.mark.perf
def test_telemetry_overhead(request):
    if not request.config.getoption("--run-telemetry"):
        pytest.skip("telemetry overhead benchmark runs only with --run-telemetry")
    report = run_telemetry_benchmark()
    _merge_into_result_file({"telemetry": report})
    sps = report["steps_per_sec"]
    print(
        f"\ntelemetry overhead on the N={NUM_WORKERS} BSP loop: "
        f"baseline {sps['baseline']:.0f} steps/s, "
        f"disabled {sps['disabled']:.0f} ({report['disabled_overhead'] * 100:.1f}% slower), "
        f"enabled {sps['enabled']:.0f} ({report['enabled_overhead'] * 100:.1f}% slower)"
        f"\n[merged into {RESULT_PATH}]"
    )
    # The telemetry milestone's acceptance gates: the disabled no-op path
    # costs <= 2% of the uninstrumented loop, full tracing + metrics <= 10%.
    assert report["disabled_overhead"] <= TELEMETRY_DISABLED_GATE
    assert report["enabled_overhead"] <= TELEMETRY_ENABLED_GATE


@pytest.mark.perf
@pytest.mark.pool
def test_pool_throughput(request):
    if not request.config.getoption("--run-pool"):
        pytest.skip("pool benchmark runs only with --run-pool")
    import os

    report = run_pool_benchmark()
    _merge_into_result_file({"pool": report})
    sps = report["steps_per_sec"]
    single = sps["convnet_fallback_single_process"]
    pooled = sps[f"convnet_fallback_pool_{POOL_WORKERS}"]
    print(
        f"\nConvNet N={POOL_N} per-worker fallback: single-process "
        f"{single:.1f} steps/s vs pool_workers={POOL_WORKERS} {pooled:.1f} steps/s "
        f"({report['pool_speedup']:.2f}x, {report['config']['cpu_count']} cores)"
        f"\n[merged into {RESULT_PATH}]"
    )
    # The parity contract always holds, regardless of core count.
    assert report["parity_bit_identical"]
    # The pool milestone's acceptance gate: >= 1.5x the single-process
    # fallback loop with 4 pool processes.  Physically impossible without
    # parallel hardware, so the gate only arms on multi-core hosts (CI
    # nightly runners have >= 4 vCPUs); the measured numbers are recorded
    # either way.  os.cpu_count() may return None (unknown host): skip too.
    cores = os.cpu_count() or 0
    if cores >= POOL_WORKERS:
        assert report["pool_speedup"] >= 1.5
    else:
        print(f"pool speedup gate skipped: {cores} cores < {POOL_WORKERS} pool workers")


@pytest.mark.perf
def test_scale_sweep(request):
    if not request.config.getoption("--run-scale"):
        pytest.skip("scale sweep runs only with --run-scale")
    sweep = run_scale_sweep()
    _merge_into_result_file({"scale_sweep": sweep})
    lines = []
    for model in ("mlp", "transformer"):
        curve = ", ".join(
            f"N={n}: {sweep['steps_per_sec'][model][str(n)]:.1f}" for n in SCALE_WORKERS
        )
        lines.append(f"{model} steps/s — {curve}")
    lines.append(
        f"transformer batched vs per-worker at N=8: "
        f"{sweep['steps_per_sec']['transformer']['8']:.1f} vs "
        f"{sweep['transformer_per_worker_n8_steps_per_sec']:.1f} steps/s "
        f"({sweep['transformer_batched_speedup_n8']:.2f}x)"
    )
    print("\n" + "\n".join(lines) + f"\n[merged into {RESULT_PATH}]")
    # The transformer-executor milestone's acceptance gate: the batched path
    # >= 3x the per-worker fallback on the N=8 BSP loop.
    assert sweep["transformer_batched_speedup_n8"] >= 3.0


def _standalone_main(argv=None) -> int:
    """Standalone entry: ``python -m benchmarks.perf_smoke [--run-...]``.

    With no flags every perf section runs (the historical behaviour) and the
    merged report prints as JSON.  ``--run-scenarios`` additionally (or
    exclusively) runs the paper-scale scenario sweep suite
    (``benchmarks/scenario_suite.py``), which records its outputs in
    ``BENCH_scenarios.json`` next to ``BENCH_engine.json``.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="benchmarks.perf_smoke", description=__doc__)
    parser.add_argument("--run-perf", action="store_true", help="engine perf smoke sections")
    parser.add_argument("--run-scale", action="store_true", help="large-N scale sweep")
    parser.add_argument("--run-pool", action="store_true", help="replica-pool benchmark")
    parser.add_argument(
        "--run-telemetry",
        action="store_true",
        help="telemetry overhead benchmark (merges telemetry into BENCH_engine.json)",
    )
    parser.add_argument(
        "--run-scenarios", action="store_true", help="paper-scale scenario sweeps"
    )
    parser.add_argument(
        "--stacked",
        action="store_true",
        help=(
            "with --run-scenarios: also run the stacked-vs-sequential contrast "
            "(merges stacked_sweep into BENCH_scenarios.json)"
        ),
    )
    parser.add_argument(
        "--write-results",
        action="store_true",
        help="persist scenario reports to benchmarks/results/scenarios/",
    )
    args = parser.parse_args(argv)
    run_all = not (
        args.run_perf
        or args.run_scale
        or args.run_pool
        or args.run_telemetry
        or args.run_scenarios
    )

    report = {}
    if args.run_perf or run_all:
        report.update(run_benchmark())
    if args.run_scale or run_all:
        report["scale_sweep"] = run_scale_sweep()
    if args.run_pool or run_all:
        report["pool"] = run_pool_benchmark()
    if args.run_telemetry or run_all:
        report["telemetry"] = run_telemetry_benchmark()
    if report:
        print(json.dumps(report, indent=2))
    if args.run_scenarios:
        from benchmarks.scenario_suite import main as run_scenario_suite

        run_scenario_suite(write_results=args.write_results, stacked=args.stacked)
    return 0


if __name__ == "__main__":  # standalone: python -m benchmarks.perf_smoke
    raise SystemExit(_standalone_main())
