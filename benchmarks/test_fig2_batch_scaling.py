"""Fig. 2 — compute time and memory utilization vs per-worker batch size.

Paper: increasing the worker batch size to N*b (to make SSP do BSP-level
work per step) inflates both compute time and memory; the Transformer OOMs
beyond b = 64 on a 12 GB K80.
"""

import pytest

from benchmarks._helpers import save_report

from repro.cluster.compute_model import PAPER_WORKLOADS, ComputeCostModel, memory_gigabytes
from repro.harness.reporting import format_table

BATCH_SIZES = [32, 64, 128, 256, 512, 1024]
K80_MEMORY_GB = 12.0


def _compute_tables():
    compute_ms = {}
    memory_gb = {}
    for name, spec in PAPER_WORKLOADS.items():
        model = ComputeCostModel(spec)
        compute_ms[name] = {b: model.step_seconds(b) * 1000.0 for b in BATCH_SIZES}
        memory_gb[name] = {b: memory_gigabytes(spec, b) for b in BATCH_SIZES}
    return compute_ms, memory_gb


@pytest.mark.benchmark(group="fig2")
def test_fig2_compute_time_and_memory_vs_batch(benchmark):
    compute_ms, memory_gb = benchmark.pedantic(_compute_tables, rounds=1, iterations=1)

    rows_a = [[b] + [round(compute_ms[m][b], 1) for m in PAPER_WORKLOADS] for b in BATCH_SIZES]
    rows_b = [[b] + [round(memory_gb[m][b], 2) for m in PAPER_WORKLOADS] for b in BATCH_SIZES]
    report = "\n\n".join(
        [
            format_table(["batch"] + list(PAPER_WORKLOADS), rows_a,
                         title="Fig. 2a — compute time (ms) vs batch size"),
            format_table(["batch"] + list(PAPER_WORKLOADS), rows_b,
                         title="Fig. 2b — memory (GB) vs batch size"),
        ]
    )
    save_report("fig2_batch_scaling", report)

    for name in PAPER_WORKLOADS:
        times = [compute_ms[name][b] for b in BATCH_SIZES]
        mems = [memory_gb[name][b] for b in BATCH_SIZES]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
        assert all(m2 > m1 for m1, m2 in zip(mems, mems[1:]))
    # The Transformer workload exceeds the K80's 12 GB budget at large batches
    # (the OOM the paper reports beyond b = 64 at its memory footprint).
    assert memory_gb["transformer"][1024] > K80_MEMORY_GB
    assert memory_gb["transformer"][32] < K80_MEMORY_GB
