"""Fig. 10 — gradient aggregation (GA) vs parameter aggregation (PA) in SelSync.

Paper: with δ = 0.25 and SelDP, parameter aggregation converges to the same
or better accuracy than gradient aggregation — the gap appears in workloads
with a learning-rate decay schedule, while the fixed-LR AlexNet behaves the
same under both.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table


def _run(workload: str, aggregation: str, iterations: int, seed: int = 0):
    preset = build_workload(workload)
    cluster = build_cluster(preset, num_workers=4, seed=seed)
    trainer = SelSyncTrainer(
        cluster,
        SelSyncConfig(delta=0.25, aggregation=aggregation),
        lr_schedule=preset.lr_schedule_factory(iterations),
        eval_every=max(iterations // 5, 1),
    )
    return trainer.run(iterations)


def _experiment():
    iterations = 300 if full_scale() else 120
    workloads = (
        ["resnet101", "vgg11", "alexnet", "transformer"]
        if full_scale()
        else ["resnet101", "transformer"]
    )
    results = {}
    for workload in workloads:
        results[workload] = {
            "pa": _run(workload, "param", iterations),
            "ga": _run(workload, "grad", iterations),
        }
    return results


@pytest.mark.benchmark(group="fig10")
def test_fig10_parameter_vs_gradient_aggregation(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = []
    for workload, pair in results.items():
        rows.append([
            workload,
            pair["pa"].metric_name,
            round(pair["pa"].best_metric, 4),
            round(pair["ga"].best_metric, 4),
        ])
    report = format_table(
        ["workload", "metric", "PA best", "GA best"], rows,
        title="Fig. 10 — SelSync (δ=0.25, SelDP): parameter vs gradient aggregation",
    )
    save_report("fig10_ga_vs_pa", report)

    for workload, pair in results.items():
        pa, ga = pair["pa"], pair["ga"]
        if pa.metric_name == "perplexity":
            # Lower is better: PA must be at least as good up to a small margin.
            assert pa.best_metric <= ga.best_metric * 1.05
        else:
            assert pa.best_metric >= ga.best_metric - 0.02
