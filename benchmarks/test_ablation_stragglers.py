"""Ablation — sensitivity to stragglers (systems heterogeneity).

§II-A: BSP is gated by its slowest worker on every step.  SelSync still
barriers on synchronous steps but skips the barrier on local steps, and SSP
avoids per-step barriers entirely; under a straggler model the simulated
wall-clock should reflect exactly that ordering.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.cluster.heterogeneity import StragglerModel
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.algorithms.bsp import BSPTrainer
from repro.algorithms.ssp import SSPTrainer
from repro.data.datasets import build_dataset
from repro.data.partition import SelSyncPartitioner
from repro.harness.experiment import build_workload
from repro.harness.reporting import format_table


def _cluster_with_stragglers(preset, seed=0, straggler_prob=0.2, slowdown=4.0):
    bundle = build_dataset(preset.dataset_name, seed=seed, **preset.dataset_kwargs)
    config = ClusterConfig(
        num_workers=4, batch_size=preset.batch_size, seed=seed, task=preset.task,
        workload=preset.workload_spec, top_k=preset.top_k,
        speed_model=StragglerModel(straggler_prob=straggler_prob, slowdown=slowdown, seed=seed),
    )
    return SimulatedCluster(
        model_factory=preset.model_factory,
        optimizer_factory=preset.optimizer_factory,
        train_dataset=bundle.train,
        test_dataset=bundle.test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def _experiment():
    iterations = 120 if full_scale() else 60
    preset = build_workload("resnet101")
    runs = {}
    cluster = _cluster_with_stragglers(preset)
    runs["bsp"] = BSPTrainer(cluster, eval_every=iterations).run(iterations)
    cluster = _cluster_with_stragglers(preset)
    runs["selsync(0.5)"] = SelSyncTrainer(
        cluster, SelSyncConfig(delta=0.5), eval_every=iterations
    ).run(iterations)
    cluster = _cluster_with_stragglers(preset)
    runs["ssp(s=100)"] = SSPTrainer(cluster, staleness=100, eval_every=iterations).run(iterations)
    return runs


@pytest.mark.benchmark(group="ablation_stragglers")
def test_ablation_straggler_sensitivity(benchmark):
    runs = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [label, round(r.sim_time_seconds, 1), round(r.sim_time_seconds / r.iterations, 3),
         round(r.best_metric, 4)]
        for label, r in runs.items()
    ]
    report = format_table(
        ["method", "simulated time (s)", "time per iteration (s)", "best accuracy"], rows,
        title="Ablation — wall-clock under a 20% straggler probability (4x slowdown)",
    )
    save_report("ablation_stragglers", report)

    per_iter = {label: r.sim_time_seconds / r.iterations for label, r in runs.items()}
    # BSP pays the straggler penalty plus a full synchronization every step,
    # so it has the highest per-iteration cost; SSP's asynchronous pushes are
    # the cheapest.
    assert per_iter["bsp"] > per_iter["selsync(0.5)"]
    assert per_iter["bsp"] > per_iter["ssp(s=100)"]
