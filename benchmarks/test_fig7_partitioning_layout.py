"""Fig. 7 — DefDP vs SelDP data-partitioning layout for a 4-worker cluster.

Regenerates the chunk-visit order of both schemes and checks the circular-
queue property SelDP is built on.
"""

import numpy as np
import pytest

from benchmarks._helpers import save_report

from repro.data.partition import DefaultPartitioner, SelSyncPartitioner, partition_layout
from repro.harness.reporting import format_table

NUM_WORKERS = 4
DATASET_SIZE = 1024


def _experiment():
    defdp = DefaultPartitioner(seed=0).partition(DATASET_SIZE, NUM_WORKERS)
    seldp = SelSyncPartitioner(seed=0).partition(DATASET_SIZE, NUM_WORKERS)
    return defdp, seldp


@pytest.mark.benchmark(group="fig7")
def test_fig7_partition_layouts(benchmark):
    defdp, seldp = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    def_layout = partition_layout(defdp)
    sel_layout = partition_layout(seldp)
    rows = []
    for worker in range(NUM_WORKERS):
        rows.append([
            f"worker{worker}",
            " ".join(f"DP{c}" for c in def_layout[worker]),
            " ".join(f"DP{c}" for c in sel_layout[worker]),
        ])
    report = format_table(
        ["worker", "DefDP chunk order", "SelDP chunk order (circular queue)"], rows,
        title="Fig. 7 — data partitioning layouts for a 4-worker cluster",
    )
    save_report("fig7_partitioning_layout", report)

    # DefDP: disjoint single chunks; SelDP: every worker visits all chunks,
    # rotated by its worker id.
    for worker in range(NUM_WORKERS):
        assert def_layout[worker] == [worker]
        expected = list(range(worker, NUM_WORKERS)) + list(range(0, worker))
        assert sel_layout[worker] == expected
        assert seldp.worker_indices[worker].size == DATASET_SIZE
        np.testing.assert_array_equal(
            np.sort(seldp.worker_indices[worker]), np.arange(DATASET_SIZE)
        )
