"""Fig. 11 — weight-distribution density: BSP vs SelSync-PA vs SelSync-GA.

Paper: the parameter distribution of SelSync with parameter aggregation
stays aligned with the distribution BSP produces, while gradient aggregation
lets the weights drift into a visibly different (narrower / shifted)
distribution — evidence of the replica divergence §III-C describes.
"""

import numpy as np
import pytest

from benchmarks._helpers import full_scale, save_report

from repro.algorithms.bsp import BSPTrainer
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table
from repro.stats.kde import distribution_summary
from repro.utils.flatten import flatten_arrays


def _train(method: str, iterations: int, seed: int = 0):
    preset = build_workload("resnet101")
    cluster = build_cluster(preset, num_workers=4, seed=seed)
    schedule = preset.lr_schedule_factory(iterations)
    if method == "bsp":
        trainer = BSPTrainer(cluster, lr_schedule=schedule, eval_every=iterations)
    else:
        aggregation = "param" if method == "pa" else "grad"
        trainer = SelSyncTrainer(
            cluster, SelSyncConfig(delta=0.25, aggregation=aggregation),
            lr_schedule=schedule, eval_every=iterations,
        )
    trainer.run(iterations)
    flat, _ = flatten_arrays(trainer.global_state())
    return flat


def _experiment():
    iterations = 250 if full_scale() else 100
    return {method: _train(method, iterations) for method in ("bsp", "pa", "ga")}


@pytest.mark.benchmark(group="fig11")
def test_fig11_weight_distribution_alignment(benchmark):
    weights = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    summaries = {m: distribution_summary(w, zero_band=1e-3) for m, w in weights.items()}
    rows = [
        [m.upper(), f"{s.mean:.4e}", f"{s.std:.4e}", f"{s.quantiles['p5']:.3e}",
         f"{s.quantiles['p95']:.3e}"]
        for m, s in summaries.items()
    ]
    report = format_table(
        ["method", "weight mean", "weight std", "p5", "p95"], rows,
        title="Fig. 11 — model weight distributions after the same number of steps",
    )

    # Distribution distance to BSP measured on matched quantiles of the
    # flattened weight vectors (a cheap 1-D Wasserstein proxy).
    quantile_grid = np.linspace(0.01, 0.99, 99)
    q_bsp = np.quantile(weights["bsp"], quantile_grid)
    dist = {
        m: float(np.mean(np.abs(np.quantile(weights[m], quantile_grid) - q_bsp)))
        for m in ("pa", "ga")
    }
    report += (
        f"\n\nmean |quantile difference| to BSP:  PA = {dist['pa']:.4e}, GA = {dist['ga']:.4e}"
    )
    save_report("fig11_weight_distributions", report)

    # Shape: PA's weight distribution is at least as close to BSP's as GA's is.
    assert dist["pa"] <= dist["ga"] * 1.1
