"""Fig. 9 — SelSync convergence with SelDP vs DefDP partitioning.

Paper: with δ = 0.25 and gradient aggregation, SelDP reaches clearly better
test accuracy than DefDP for the same number of epochs, because under mostly
local training DefDP workers only ever see their own shard and the local
replicas drift towards shard-specific minima.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.data.datasets import build_dataset
from repro.data.partition import DefaultPartitioner, SelSyncPartitioner
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table


def _run(workload: str, partitioner_name: str, iterations: int, num_workers: int, seed: int = 0):
    preset = build_workload(workload)
    dataset_kwargs = dict(preset.dataset_kwargs)
    if not full_scale():
        # A smaller training set per worker makes the DefDP starvation effect
        # visible at benchmark scale (the paper's effect comes from 16-way
        # sharding of CIFAR).
        dataset_kwargs.setdefault("train_samples", 2048)
    bundle = build_dataset(preset.dataset_name, seed=seed, **dataset_kwargs)
    partitioner = (
        SelSyncPartitioner(seed=seed) if partitioner_name == "seldp"
        else DefaultPartitioner(seed=seed)
    )
    cluster = build_cluster(preset, num_workers=num_workers, seed=seed,
                            partitioner=partitioner, bundle=bundle)
    trainer = SelSyncTrainer(
        cluster,
        SelSyncConfig(delta=0.5, aggregation="grad"),
        lr_schedule=preset.lr_schedule_factory(iterations),
        eval_every=max(iterations // 5, 1),
    )
    return trainer.run(iterations)


def _experiment():
    iterations = 300 if full_scale() else 120
    num_workers = 8
    workloads = ["resnet101", "vgg11", "alexnet", "transformer"] if full_scale() else ["resnet101"]
    results = {}
    for workload in workloads:
        results[workload] = {
            "seldp": _run(workload, "seldp", iterations, num_workers),
            "defdp": _run(workload, "defdp", iterations, num_workers),
        }
    return results


@pytest.mark.benchmark(group="fig9")
def test_fig9_seldp_vs_defdp(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = []
    for workload, pair in results.items():
        rows.append([
            workload,
            round(pair["seldp"].best_metric, 4),
            round(pair["defdp"].best_metric, 4),
            round(pair["seldp"].lssr, 3),
        ])
    report = format_table(
        ["workload", "SelDP best metric", "DefDP best metric", "LSSR"], rows,
        title="Fig. 9 — SelSync (δ=0.5, gradient aggregation): SelDP vs DefDP",
    )
    save_report("fig9_seldp_vs_defdp", report)

    for workload, pair in results.items():
        seldp, defdp = pair["seldp"], pair["defdp"]
        if seldp.metric_name == "perplexity":
            assert seldp.best_metric <= defdp.best_metric * 1.05
        else:
            assert seldp.best_metric >= defdp.best_metric - 0.02
        # The comparison is only meaningful in the semi-synchronous regime.
        assert seldp.lssr > 0.5
