"""Fig. 3 — gradient distributions early vs late in training.

Paper: kernel density estimates of per-layer gradients are wide and volatile
in epoch 1 and collapse towards zero once the model approaches convergence.
"""

import numpy as np
import pytest

from benchmarks._helpers import full_scale, save_report

from repro.data.datasets import make_classification_splits
from repro.harness.reporting import format_table
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.models import ResNetLike
from repro.optim.sgd import SGD
from repro.stats.kde import distribution_summary, gaussian_kde_density


def _collect_gradients(model, dataset, batch_size=64, seed=0):
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(dataset), size=batch_size, replace=False)
    x, y = dataset[idx]
    model.zero_grad()
    logits = model.forward(x)
    _, dlogits = cross_entropy_with_logits(logits, y)
    model.backward(dlogits)
    grads = model.gradient_dict()
    # One representative deep layer, as in the paper's Fig. 3 (layer4_1_conv1).
    layer_name = [n for n in grads if n.startswith("block")][len(grads) // 8]
    return grads[layer_name].ravel()


def _experiment():
    steps = 600 if full_scale() else 200
    train, _ = make_classification_splits(2048, 256, 10, 64, class_sep=3.5, seed=0)
    model = ResNetLike(input_dim=64, num_classes=10, width=96, depth=6,
                       rng=np.random.default_rng(0))
    optimizer = SGD(model, lr=0.05, momentum=0.9)
    early_grads = _collect_gradients(model, train)

    rng = np.random.default_rng(1)
    for step in range(steps):
        idx = rng.integers(0, len(train), size=32)
        x, y = train[idx]
        model.zero_grad()
        logits = model.forward(x)
        _, dlogits = cross_entropy_with_logits(logits, y)
        model.backward(dlogits)
        optimizer.step()
    late_grads = _collect_gradients(model, train, seed=2)
    return early_grads, late_grads


@pytest.mark.benchmark(group="fig3")
def test_fig3_gradient_kde_early_vs_late(benchmark):
    early, late = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    early_summary = distribution_summary(early, zero_band=1e-4)
    late_summary = distribution_summary(late, zero_band=1e-4)
    grid_e, kde_e = gaussian_kde_density(early, grid_points=50)
    grid_l, kde_l = gaussian_kde_density(late, grid_points=50)

    rows = [
        ["early (epoch ~1)", f"{early_summary.std:.2e}", f"{early_summary.fraction_near_zero:.3f}",
         f"{kde_e.max():.1f}"],
        ["late (converged)", f"{late_summary.std:.2e}", f"{late_summary.fraction_near_zero:.3f}",
         f"{kde_l.max():.1f}"],
    ]
    report = format_table(
        ["phase", "gradient std", "fraction |g|<1e-4", "KDE peak density"], rows,
        title="Fig. 3 — gradient distribution of a deep residual-block layer, early vs late",
    )
    save_report("fig3_gradient_kde", report)

    # Shape: late-training gradients are smaller and far more concentrated at 0.
    assert late_summary.std < early_summary.std
    assert kde_l.max() > kde_e.max()
