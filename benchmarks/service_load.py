"""Service load benchmark: sustained concurrent submissions with p50/p99.

Measures the experiment service's own overhead — HTTP handling, schema +
deep validation, SQLite queueing, worker claim/execute/persist — not
training throughput.  A fleet of client threads submits analytic
``throughput`` jobs (each executes in well under a millisecond) against an
in-process :class:`~repro.service.app.ExperimentService` over real sockets,
so the recorded latencies are dominated by the service stack under
concurrency.

Recorded into ``BENCH_service.json`` at the repo root:

* ``submit_latency_ms`` — HTTP POST round-trip (validation + enqueue),
  p50/p99/mean/max across every submission;
* ``e2e_latency_ms`` — submit to observed ``DONE`` (client-side polling),
  i.e. queueing + execution + persistence;
* ``jobs_per_sec`` — sustained completed-job throughput over the run.

CI gates on the latency percentiles through ``compare_bench.py
--service-baseline/--service-current`` (>25% p99 growth fails, like the
engine/scenario benches).  Gated behind ``--run-service`` for pytest runs;
standalone invocation::

    PYTHONPATH=src python -m benchmarks.service_load            # full run
    PYTHONPATH=src python -m benchmarks.service_load --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.service import ExperimentService, QuotaManager, ServiceClient

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The submitted job: analytic relative-throughput curves — no training, so
#: latency percentiles measure the service, not the simulator.
ACTION = "throughput"
PAYLOAD = {"workloads": ["resnet101"], "worker_counts": [1, 2, 4, 8]}

#: Full-run shape: 8 concurrent submitters x 25 jobs each.
THREADS = 8
SUBMISSIONS_PER_THREAD = 25
SERVICE_WORKERS = 4

#: CI smoke shape (the per-PR perf job): enough samples for a stable p99
#: without holding the job hostage.
SMOKE_THREADS = 4
SMOKE_SUBMISSIONS = 10


def _percentiles(samples_ms: List[float]) -> Dict[str, float]:
    ordered = sorted(samples_ms)
    if not ordered:
        return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}

    def at(q: float) -> float:
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    return {
        "p50": round(at(0.50), 3),
        "p99": round(at(0.99), 3),
        "mean": round(statistics.fmean(ordered), 3),
        "max": round(ordered[-1], 3),
    }


def run_load(
    *,
    threads: int = THREADS,
    submissions_per_thread: int = SUBMISSIONS_PER_THREAD,
    service_workers: int = SERVICE_WORKERS,
) -> Dict[str, object]:
    """Drive the load and return the BENCH_service.json payload."""
    service = ExperimentService(
        port=0,
        workers=service_workers,
        # admission control off: the benchmark measures capacity, not policy
        quotas=QuotaManager(max_active_jobs=None, rate=None),
    )
    service.start()
    submit_ms: List[float] = []
    e2e_ms: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()

    def submitter(index: int) -> None:
        # one tenant per thread: the multi-tenant shape real traffic has
        client = ServiceClient(service.url, tenant=f"load-{index}")
        jobs: List[tuple[str, float]] = []
        for _ in range(submissions_per_thread):
            t0 = time.perf_counter()
            try:
                job = client.submit(ACTION, PAYLOAD)
            except Exception as exc:  # noqa: BLE001 — a failure is the finding
                with lock:
                    errors.append(f"submit: {exc}")
                continue
            elapsed = (time.perf_counter() - t0) * 1e3
            with lock:
                submit_ms.append(elapsed)
            jobs.append((job["id"], t0))
        for job_id, t0 in jobs:
            try:
                done = client.wait(job_id, timeout=120, poll_interval=0.005)
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(f"wait: {exc}")
                continue
            elapsed = (time.perf_counter() - t0) * 1e3
            with lock:
                e2e_ms.append(elapsed)
                if done["state"] != "DONE":
                    errors.append(f"job {job_id} finished {done['state']}")

    wall_start = time.perf_counter()
    pool = [threading.Thread(target=submitter, args=(i,)) for i in range(threads)]
    try:
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        wall = time.perf_counter() - wall_start
    finally:
        service.stop()

    total = threads * submissions_per_thread
    return {
        "config": {
            "threads": threads,
            "submissions_per_thread": submissions_per_thread,
            "service_workers": service_workers,
            "action": ACTION,
            "payload": PAYLOAD,
        },
        "load": {
            "total_jobs": total,
            "completed_jobs": len(e2e_ms),
            "failures": len(errors),
            "errors": errors[:10],
            "duration_seconds": round(wall, 3),
            "jobs_per_sec": round(len(e2e_ms) / wall, 2) if wall else 0.0,
            "submit_latency_ms": _percentiles(submit_ms),
            "e2e_latency_ms": _percentiles(e2e_ms),
        },
    }


def write_bench(payload: Dict[str, object], path: Path = BENCH_PATH) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")
    load = payload["load"]
    print(
        f"service load: {load['completed_jobs']}/{load['total_jobs']} jobs in "
        f"{load['duration_seconds']}s ({load['jobs_per_sec']} jobs/s); "
        f"submit p50/p99 = {load['submit_latency_ms']['p50']}/"
        f"{load['submit_latency_ms']['p99']} ms; "
        f"e2e p50/p99 = {load['e2e_latency_ms']['p50']}/"
        f"{load['e2e_latency_ms']['p99']} ms"
    )
    print(f"[written to {path}]")


# --------------------------------------------------------------------------- #
# pytest entry point (gated behind --run-service)
# --------------------------------------------------------------------------- #
@pytest.mark.perf
def test_service_load_records_latency_percentiles(request):
    if not request.config.getoption("--run-service"):
        pytest.skip("service load benchmark runs only with --run-service")
    payload = run_load(threads=SMOKE_THREADS, submissions_per_thread=SMOKE_SUBMISSIONS)
    load = payload["load"]
    assert load["failures"] == 0, load["errors"]
    assert load["completed_jobs"] == load["total_jobs"]
    assert load["submit_latency_ms"]["p99"] > 0
    assert load["e2e_latency_ms"]["p99"] >= load["e2e_latency_ms"]["p50"]
    write_bench(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI smoke shape ({SMOKE_THREADS} threads x {SMOKE_SUBMISSIONS} jobs)",
    )
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--submissions", type=int, default=None)
    parser.add_argument("--service-workers", type=int, default=SERVICE_WORKERS)
    parser.add_argument("--output", type=Path, default=BENCH_PATH)
    args = parser.parse_args(argv)
    threads = args.threads or (SMOKE_THREADS if args.smoke else THREADS)
    submissions = args.submissions or (SMOKE_SUBMISSIONS if args.smoke else SUBMISSIONS_PER_THREAD)
    payload = run_load(
        threads=threads,
        submissions_per_thread=submissions,
        service_workers=args.service_workers,
    )
    write_bench(payload, args.output)
    return 1 if payload["load"]["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
