"""Fig. 6 — sliding δ between BSP (δ = 0) and pure local SGD (δ ≥ M).

The figure in the paper is conceptual; this benchmark makes it quantitative:
LSSR (the fraction of local steps) grows monotonically as δ slides from 0 to
beyond the maximum observed Δ(gᵢ), with the two extremes matching BSP and
local-SGD exactly.  The grid, workload and cluster size live in the
``fig6-delta-sweep`` entry of the scenario registry; this benchmark only
rescales the iteration budget.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.scenarios import get_scenario, run_scenario

SCENARIO = "fig6-delta-sweep"


def _experiment():
    scenario = get_scenario(SCENARIO)
    iterations = scenario.iterations if full_scale() else 80
    return run_scenario(scenario, iterations=iterations)


@pytest.mark.benchmark(group="fig6")
def test_fig6_delta_sweep(benchmark):
    report = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_report("fig6_delta_sweep", report.table())

    deltas = list(get_scenario(SCENARIO).grid["delta"])
    lssr = report.series("delta", "lssr")
    sim_time = report.series("delta", "sim_time_seconds")
    # LSSR is monotone non-decreasing in δ and spans the full [0, ~1] range.
    lssrs = [lssr[d] for d in deltas]
    assert all(b >= a - 1e-9 for a, b in zip(lssrs, lssrs[1:]))
    assert lssr[0.0] == 0.0
    assert lssr[1e9] > 0.9
    # Simulated time shrinks as communication is eliminated.
    assert sim_time[1e9] < sim_time[0.0]
