"""Fig. 6 — sliding δ between BSP (δ = 0) and pure local SGD (δ ≥ M).

The figure in the paper is conceptual; this benchmark makes it quantitative:
LSSR (the fraction of local steps) grows monotonically as δ slides from 0 to
beyond the maximum observed Δ(gᵢ), with the two extremes matching BSP and
local-SGD exactly.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table

DELTAS = [0.0, 0.05, 0.1, 0.25, 0.5, 1e9]


def _experiment():
    iterations = 200 if full_scale() else 80
    results = {}
    for delta in DELTAS:
        preset = build_workload("resnet101")
        cluster = build_cluster(preset, num_workers=4, seed=0)
        trainer = SelSyncTrainer(
            cluster, SelSyncConfig(delta=delta),
            lr_schedule=preset.lr_schedule_factory(iterations),
            eval_every=max(iterations // 4, 1),
        )
        run = trainer.run(iterations)
        results[delta] = {
            "lssr": run.lssr,
            "accuracy": run.best_metric,
            "sim_time": run.sim_time_seconds,
            "max_delta": run.extras["max_delta_observed"],
        }
    return results


@pytest.mark.benchmark(group="fig6")
def test_fig6_delta_sweep(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [("∞ (local SGD)" if d == 1e9 else d), round(r["lssr"], 3),
         round(r["accuracy"], 4), round(r["sim_time"], 1)]
        for d, r in results.items()
    ]
    report = format_table(
        ["δ", "LSSR", "best accuracy", "simulated time (s)"], rows,
        title="Fig. 6 — δ sweep between fully synchronous (δ=0) and fully local training",
    )
    save_report("fig6_delta_sweep", report)

    lssrs = [results[d]["lssr"] for d in DELTAS]
    # LSSR is monotone non-decreasing in δ and spans the full [0, ~1] range.
    assert all(b >= a - 1e-9 for a, b in zip(lssrs, lssrs[1:]))
    assert results[0.0]["lssr"] == 0.0
    assert results[1e9]["lssr"] > 0.9
    # Simulated time shrinks as communication is eliminated.
    assert results[1e9]["sim_time"] < results[0.0]["sim_time"]
