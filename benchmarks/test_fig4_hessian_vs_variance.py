"""Fig. 4 — Hessian top eigenvalue vs first-order gradient variance.

Paper: the largest eigenvalue of the loss Hessian (an indicator of critical
learning periods) follows the same trajectory as the much cheaper
first-order gradient variance, so the latter can drive the SelSync decision
rule.
"""

import numpy as np
import pytest

from benchmarks._helpers import full_scale, save_report

from repro.data.datasets import make_classification_splits
from repro.harness.reporting import format_table
from repro.nn.losses import cross_entropy_with_logits
from repro.nn.models import MLP
from repro.optim.sgd import SGD
from repro.stats.hessian import hessian_top_eigenvalue
from repro.stats.variance import gradient_variance


def _experiment():
    checkpoints = 12 if full_scale() else 8
    steps_per_checkpoint = 20
    train, _ = make_classification_splits(1024, 128, 8, 24, class_sep=3.5, seed=0)
    model = MLP((24, 48, 8), rng=np.random.default_rng(0))
    optimizer = SGD(model, lr=0.05, momentum=0.9)
    rng = np.random.default_rng(1)

    probe_idx = rng.choice(len(train), size=128, replace=False)
    probe_x, probe_y = train[probe_idx]

    eigenvalues, variances, steps = [], [], []
    for checkpoint in range(checkpoints):
        model.zero_grad()
        logits = model.forward(probe_x)
        _, dlogits = cross_entropy_with_logits(logits, probe_y)
        model.backward(dlogits)
        variances.append(gradient_variance(model.gradient_dict()))
        eigenvalues.append(
            abs(hessian_top_eigenvalue(model, probe_x, probe_y, num_iterations=8, seed=0))
        )
        steps.append(checkpoint * steps_per_checkpoint)
        for _ in range(steps_per_checkpoint):
            idx = rng.integers(0, len(train), size=32)
            x, y = train[idx]
            model.zero_grad()
            logits = model.forward(x)
            _, dlogits = cross_entropy_with_logits(logits, y)
            model.backward(dlogits)
            optimizer.step()
    return np.array(steps), np.array(eigenvalues), np.array(variances)


@pytest.mark.benchmark(group="fig4")
def test_fig4_hessian_eigenvalue_tracks_gradient_variance(benchmark):
    steps, eigenvalues, variances = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [int(s), f"{e:.4f}", f"{v:.3e}"]
        for s, e, v in zip(steps, eigenvalues, variances)
    ]
    report = format_table(
        ["step", "|Hessian top eigenvalue|", "gradient variance"], rows,
        title="Fig. 4 — Hessian eigenvalue vs first-order gradient variance over training",
    )
    corr = np.corrcoef(eigenvalues, variances)[0, 1]
    report += f"\n\nPearson correlation between the two series: {corr:.3f}"
    save_report("fig4_hessian_vs_variance", report)

    # Shape: the two series move together (strong positive correlation), and
    # both decay from the early-training regime to the converged regime.
    assert corr > 0.5
    assert variances[-1] < variances[0]
