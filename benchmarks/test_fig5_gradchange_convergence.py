"""Fig. 5 — correlation between Δ(gᵢ) and model convergence in BSP.

Paper: the relative gradient change is high while the test metric is moving
(early phase, LR-decay jumps) and flattens once convergence plateaus, which
is what makes it a usable significance signal.

The reproduction uses a harder synthetic mixture (lower class separation,
more noise) so the accuracy curve keeps moving for a substantial fraction of
the run instead of saturating within a few steps.
"""

import numpy as np
import pytest

from benchmarks._helpers import full_scale, save_report

from repro.algorithms.bsp import BSPTrainer
from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.core.gradient_tracker import GradientChangeTracker
from repro.data.datasets import make_classification_splits
from repro.data.partition import SelSyncPartitioner
from repro.harness.reporting import format_table
from repro.nn.models import ResNetLike
from repro.optim.sgd import SGD


class _TrackedBSP(BSPTrainer):
    """BSP trainer that additionally tracks Δ(gᵢ) of worker 0 (analysis only)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.tracker = GradientChangeTracker(window=25, alpha=0.16)

    def train_step(self):
        info = super().train_step()
        self.tracker.update(self.cluster.workers[0].model.gradient_dict())
        return info


def _experiment():
    iterations = 300 if full_scale() else 150
    train, test = make_classification_splits(
        4096, 512, 10, 64, class_sep=2.0, noise=1.3, seed=0
    )
    config = ClusterConfig(num_workers=4, batch_size=32, seed=0)
    cluster = SimulatedCluster(
        model_factory=lambda rng: ResNetLike(64, 10, width=96, depth=6, rng=rng),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9, weight_decay=4e-4),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=0),
    )
    trainer = _TrackedBSP(cluster, eval_every=max(iterations // 10, 1))
    result = trainer.run(iterations)
    return result, np.array(trainer.tracker.history)


@pytest.mark.benchmark(group="fig5")
def test_fig5_delta_correlates_with_convergence(benchmark):
    result, deltas = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    history = result.history
    rows = []
    for point in history:
        window = deltas[max(point.step - 15, 0): point.step]
        rows.append([point.step, round(float(np.mean(window)), 4), round(point.metric, 4)])
    report = format_table(
        ["step", "mean Δ(g) (trailing window)", "test accuracy"], rows,
        title="Fig. 5 — relative gradient change vs test-metric progression (BSP, ResNet analog)",
    )
    save_report("fig5_gradchange_convergence", report)

    # Shape: the early phase (metric still climbing) has larger Δ(gᵢ) than the
    # converged tail, where both the metric and the gradient statistic flatten.
    early_delta = float(np.mean(deltas[2:40]))
    late_delta = float(np.mean(deltas[-40:]))
    assert early_delta > late_delta
    # The accuracy gained in the first half of the run exceeds the gain in the
    # second half — the convergence curve really does flatten out.
    mid = len(history) // 2
    early_gain = history[mid].metric - history[0].metric
    late_gain = history[-1].metric - history[mid].metric
    assert early_gain > late_gain
