"""Fig. 1b — FedAvg on IID vs non-IID data.

Paper: FedAvg (C=1, E=0.1) converges markedly worse when CIFAR-10/100 is
split 1 / 10 labels per worker than with balanced IID partitions.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.algorithms.fedavg import FedAvgTrainer
from repro.data.noniid import LabelSkewPartitioner
from repro.data.partition import DefaultPartitioner
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table


def _run(noniid: bool, iterations: int, num_workers: int, seed: int = 0):
    preset = build_workload("resnet101")
    from repro.data.datasets import build_dataset

    bundle = build_dataset(preset.dataset_name, seed=seed, **preset.dataset_kwargs)
    if noniid:
        partitioner = LabelSkewPartitioner(bundle.train.targets, labels_per_worker=1, seed=seed)
    else:
        partitioner = DefaultPartitioner(seed=seed)
    cluster = build_cluster(preset, num_workers=num_workers, seed=seed,
                            partitioner=partitioner, bundle=bundle)
    trainer = FedAvgTrainer(cluster, participation=1.0, sync_factor=0.1,
                            lr_schedule=preset.lr_schedule_factory(iterations),
                            eval_every=max(iterations // 5, 1))
    return trainer.run(iterations)


def _experiment():
    iterations = 240 if full_scale() else 100
    num_workers = 10 if full_scale() else 4
    iid = _run(noniid=False, iterations=iterations, num_workers=num_workers)
    noniid = _run(noniid=True, iterations=iterations, num_workers=num_workers)
    return iid, noniid


@pytest.mark.benchmark(group="fig1b")
def test_fig1b_fedavg_iid_vs_noniid(benchmark):
    iid, noniid = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        ["IID (DefDP)", iid.iterations, round(iid.best_metric, 4)],
        ["non-IID (1 label/worker)", noniid.iterations, round(noniid.best_metric, 4)],
    ]
    report = format_table(
        ["data split", "iterations", "best test accuracy"], rows,
        title="Fig. 1b — FedAvg (C=1, E=0.1): IID vs non-IID label-skew split",
    )
    report += "\n\nIID curve:      " + ", ".join(f"{p.metric:.3f}" for p in iid.history)
    report += "\nnon-IID curve:  " + ", ".join(f"{p.metric:.3f}" for p in noniid.history)
    save_report("fig1b_fedavg_noniid", report)

    # Shape: balanced data converges to clearly higher accuracy than the
    # 1-label-per-worker split under the same FedAvg configuration.
    assert iid.best_metric > noniid.best_metric
