"""Fig. 1a — relative training throughput vs number of workers.

Paper: PS training of ResNet101, VGG11, AlexNet and Transformer on V100s
over a 5 Gbps NIC scales far below linearly; ResNet101 improves only ~3x
going from 1 to 16 workers and VGG11 (the largest model, 507 MB) is the
worst scaler.
"""

import pytest

from benchmarks._helpers import save_report

from repro.cluster.compute_model import PAPER_WORKLOADS
from repro.comm.cost_model import CommunicationCostModel
from repro.harness.reporting import format_table
from repro.metrics.throughput import throughput_curve

WORKER_COUNTS = [1, 2, 4, 8, 16]


def _compute_curves():
    comm = CommunicationCostModel(topology="ps")
    curves = {}
    for name, spec in PAPER_WORKLOADS.items():
        curves[name] = throughput_curve(spec, WORKER_COUNTS, spec.base_batch_size, comm)
    return curves


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_relative_throughput(benchmark):
    curves = benchmark.pedantic(_compute_curves, rounds=1, iterations=1)

    rows = []
    for n in WORKER_COUNTS:
        rows.append([n] + [round(curves[m][n], 2) for m in PAPER_WORKLOADS])
    report = format_table(
        ["workers"] + list(PAPER_WORKLOADS), rows,
        title="Fig. 1a — relative throughput vs cluster size (PS, 5 Gbps)",
    )
    save_report("fig1a_throughput_scaling", report)

    # Shape assertions from the paper:
    for name in PAPER_WORKLOADS:
        # throughput improves with workers...
        assert curves[name][16] > curves[name][2]
        # ...but stays far below linear (16 workers << 16x).
        assert curves[name][16] < 8.0
    # ResNet101 tops out around ~3x when scaling 1 -> 16 workers.
    assert 1.5 < curves["resnet101"][16] < 5.0
    # VGG11 (507 MB) is the worst scaler of the four.
    assert curves["vgg11"][16] == min(curves[m][16] for m in PAPER_WORKLOADS)
