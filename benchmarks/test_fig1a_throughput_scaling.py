"""Fig. 1a — relative training throughput vs number of workers.

Paper: PS training of ResNet101, VGG11, AlexNet and Transformer on V100s
over a 5 Gbps NIC scales far below linearly; ResNet101 improves only ~3x
going from 1 to 16 workers and VGG11 (the largest model, 507 MB) is the
worst scaler.  The workloads and worker grid live in the
``fig1a-throughput`` entry of the scenario registry.
"""

import pytest

from benchmarks._helpers import save_report

from repro.scenarios import get_scenario, run_scenario

SCENARIO = "fig1a-throughput"


def _compute_curves():
    report = run_scenario(SCENARIO)
    curves = {name: {} for name in report.meta["workloads"]}
    for record in report.records:
        curves[record.params["workload"]][record.params["workers"]] = record.metrics[
            "relative_throughput"
        ]
    return report, curves


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_relative_throughput(benchmark):
    report, curves = benchmark.pedantic(_compute_curves, rounds=1, iterations=1)
    save_report("fig1a_throughput_scaling", report.table())

    workloads = get_scenario(SCENARIO).workloads
    # Shape assertions from the paper:
    for name in workloads:
        # throughput improves with workers...
        assert curves[name][16] > curves[name][2]
        # ...but stays far below linear (16 workers << 16x).
        assert curves[name][16] < 8.0
    # ResNet101 tops out around ~3x when scaling 1 -> 16 workers.
    assert 1.5 < curves["resnet101"][16] < 5.0
    # VGG11 (507 MB) is the worst scaler of the four.
    assert curves["vgg11"][16] == min(curves[m][16] for m in workloads)
