"""Benchmark package: one module per table/figure of the SelSync paper."""
