"""Ablation — synchronization cost under PS vs ring vs tree topologies.

§III of the paper notes the PS push/pull calls can be swapped for an
all-reduce collective; ring all-reduce is bandwidth optimal, so the same
SelSync policy gets cheaper synchronous steps on large clusters.
"""

import pytest

from benchmarks._helpers import save_report

from repro.cluster.compute_model import PAPER_WORKLOADS
from repro.comm.cost_model import CommunicationCostModel
from repro.harness.reporting import format_table

WORKER_COUNTS = [4, 8, 16, 32]


def _experiment():
    out = {}
    for topology in ("ps", "ring", "tree"):
        model = CommunicationCostModel(topology=topology)
        out[topology] = {
            name: {n: model.sync_seconds(spec.model_bytes, n) for n in WORKER_COUNTS}
            for name, spec in PAPER_WORKLOADS.items()
        }
    return out


@pytest.mark.benchmark(group="ablation_topology")
def test_ablation_sync_cost_by_topology(benchmark):
    costs = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = []
    for name in PAPER_WORKLOADS:
        for n in WORKER_COUNTS:
            rows.append([
                name, n,
                round(costs["ps"][name][n], 3),
                round(costs["ring"][name][n], 3),
                round(costs["tree"][name][n], 3),
            ])
    report = format_table(
        ["workload", "workers", "PS (s)", "ring (s)", "tree (s)"], rows,
        title="Ablation — per-round synchronization cost by topology",
    )
    save_report("ablation_topology", report)

    for name in PAPER_WORKLOADS:
        # Ring all-reduce wins over the PS at large scale for every model.
        assert costs["ring"][name][32] < costs["ps"][name][32]
        # PS cost keeps growing with the worker count.
        assert costs["ps"][name][32] > costs["ps"][name][4]
        # Ring cost is roughly flat in the worker count (bandwidth optimal).
        assert costs["ring"][name][32] < costs["ring"][name][4] * 2.0
