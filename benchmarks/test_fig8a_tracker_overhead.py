"""Fig. 8a — per-step overhead of computing Δ(gᵢ) for different EWMA windows.

Paper: the overhead grows with the smoothing window (17→26 ms on ResNet101
between w=25 and w=200) but stays well below typical compute/communication
times; w = 25 suffices in practice.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.core.gradient_tracker import TrackerOverheadProbe
from repro.harness.reporting import format_table

WINDOWS = [25, 50, 100, 200]

# Analog parameter counts: large enough to make the reduction cost visible,
# ordered like the paper's models by size.
MODEL_PARAMETER_COUNTS = {
    "resnet101": 400_000,
    "vgg11": 1_200_000,
    "alexnet": 550_000,
    "transformer": 120_000,
}


def _experiment():
    steps = 60 if full_scale() else 25
    overheads = {}
    for name, count in MODEL_PARAMETER_COUNTS.items():
        probe = TrackerOverheadProbe(parameter_count=count, seed=0)
        overheads[name] = {w: probe.measure_ms(window=w, steps=steps) for w in WINDOWS}
    return overheads


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_tracker_overhead_vs_window(benchmark):
    overheads = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [[w] + [round(overheads[m][w], 3) for m in MODEL_PARAMETER_COUNTS] for w in WINDOWS]
    report = format_table(
        ["window"] + list(MODEL_PARAMETER_COUNTS), rows,
        title="Fig. 8a — Δ(gᵢ) computation overhead (ms per step) vs EWMA window",
    )
    save_report("fig8a_tracker_overhead", report)

    for name in MODEL_PARAMETER_COUNTS:
        # Overhead is a few milliseconds at most — negligible next to the
        # 100-250 ms compute times of Fig. 2a.
        assert overheads[name][25] < 50.0
        # The w=25 default is no slower than the largest window by more than noise.
        assert overheads[name][25] <= overheads[name][200] * 3.0
    # Bigger models pay more for the reduction (vgg11 analog > transformer analog).
    assert overheads["vgg11"][25] > overheads["transformer"][25]
