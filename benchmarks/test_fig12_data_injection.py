"""Fig. 12 — data injection for SelSync on non-IID data vs FedAvg.

Paper: with label-skewed partitions FedAvg oscillates far below the IID
accuracy, while SelSync with randomized data injection recovers most of it;
richer injection configurations ((0.75, 0.75, 0.3) > (0.5, 0.5, 0.3) >
(0.5, 0.5, 0.05)) give progressively better accuracy.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.algorithms.fedavg import FedAvgTrainer
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.data.datasets import build_dataset
from repro.data.injection import adjusted_batch_size
from repro.data.noniid import LabelSkewPartitioner
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table

INJECTION_CONFIGS = [(0.5, 0.5, 0.05), (0.5, 0.5, 0.3), (0.75, 0.75, 0.3)]


def _make_cluster(preset, bundle, num_workers, batch_size, seed):
    # Paper setting: 10 workers, 1 label per worker (non-IID CIFAR-10).
    partitioner = LabelSkewPartitioner(bundle.train.targets, labels_per_worker=1, seed=seed)
    return build_cluster(preset, num_workers=num_workers, seed=seed,
                         partitioner=partitioner, bundle=bundle, batch_size=batch_size)


def _experiment():
    iterations = 300 if full_scale() else 150
    num_workers = 10
    seed = 0
    preset = build_workload("resnet101")
    # Harder mixture than the IID benchmarks so the label-skew penalty is
    # visible within the benchmark's iteration budget.
    dataset_kwargs = dict(preset.dataset_kwargs)
    dataset_kwargs.update({"class_sep": 2.5, "noise": 1.2, "train_samples": 8192})
    bundle = build_dataset(preset.dataset_name, seed=seed, **dataset_kwargs)

    results = {}
    fedavg_cluster = _make_cluster(preset, bundle, num_workers, preset.batch_size, seed)
    # The paper's E=0.1 corresponds to an aggregation roughly every 16 steps on
    # full-size CIFAR-10; with the scaled-down dataset the same *step interval*
    # is obtained with a larger sync factor.
    steps_per_epoch = max(fedavg_cluster.workers[0].loader.steps_per_epoch, 1)
    sync_factor = min(max(16.0 / steps_per_epoch, 0.05), 1.0)
    results["fedavg"] = FedAvgTrainer(
        fedavg_cluster, participation=1.0, sync_factor=sync_factor,
        lr_schedule=preset.lr_schedule_factory(iterations),
        eval_every=max(iterations // 5, 1),
    ).run(iterations)

    for alpha, beta, delta in INJECTION_CONFIGS:
        b_prime = adjusted_batch_size(preset.batch_size, alpha, beta, num_workers)
        cluster = _make_cluster(preset, bundle, num_workers, b_prime, seed)
        trainer = SelSyncTrainer(
            cluster,
            SelSyncConfig(delta=delta, injection_alpha=alpha, injection_beta=beta),
            lr_schedule=preset.lr_schedule_factory(iterations),
            eval_every=max(iterations // 5, 1),
        )
        results[f"selsync({alpha},{beta},{delta})"] = trainer.run(iterations)
    return results


@pytest.mark.benchmark(group="fig12")
def test_fig12_data_injection_noniid(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [label, round(run.best_metric, 4), round(run.lssr, 3)]
        for label, run in results.items()
    ]
    report = format_table(
        ["method", "best test accuracy", "LSSR"], rows,
        title="Fig. 12 — non-IID (label-skew) training: FedAvg vs SelSync with data injection",
    )
    save_report("fig12_data_injection", report)

    fedavg = results["fedavg"].best_metric
    best_injection = results["selsync(0.75,0.75,0.3)"].best_metric
    weakest_injection = results["selsync(0.5,0.5,0.05)"].best_metric
    # Shape: data injection beats FedAvg on skewed data, and the richest
    # injection configuration is at least as good as the weakest one.
    assert best_injection > fedavg
    assert best_injection >= weakest_injection - 0.02
