"""Ablation — gradient compression baselines vs SelSync's selective skipping.

§II-D of the paper surveys compression (Top-k, signSGD, PowerSGD, ...) as the
orthogonal way of cutting communication: compress every step instead of
skipping most steps.  This ablation compares accuracy, simulated time and
bytes shipped for both families under the same budget of iterations.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.compression import PowerSGDCompressor, SignSGDCompressor, TopKCompressor
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.harness.experiment import build_cluster, build_workload, make_trainer
from repro.harness.reporting import format_table


def _experiment():
    iterations = 200 if full_scale() else 100
    preset = build_workload("resnet101")
    runs = {}

    def fresh_cluster():
        return build_cluster(preset, num_workers=4, seed=0)

    runs["bsp"] = make_trainer("bsp", fresh_cluster(), preset, iterations,
                               eval_every=iterations // 4).run(iterations)
    for label, compressor in {
        "bsp+topk(1%)": TopKCompressor(ratio=0.01),
        "bsp+signsgd": SignSGDCompressor(),
        "bsp+powersgd(r=4)": PowerSGDCompressor(rank=4, seed=0),
    }.items():
        runs[label] = make_trainer(
            "compressed_bsp", fresh_cluster(), preset, iterations,
            eval_every=iterations // 4, compressor=compressor,
        ).run(iterations)
    cluster = fresh_cluster()
    runs["selsync(0.3)"] = SelSyncTrainer(
        cluster, SelSyncConfig(delta=0.3),
        lr_schedule=preset.lr_schedule_factory(iterations),
        eval_every=iterations // 4,
    ).run(iterations)
    return runs


@pytest.mark.benchmark(group="ablation_compression")
def test_ablation_compression_vs_selsync(benchmark):
    runs = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [label, round(r.best_metric, 4), round(r.sim_time_seconds, 1),
         round(r.communication_bytes / 1e6, 2), round(r.lssr, 3)]
        for label, r in runs.items()
    ]
    report = format_table(
        ["method", "best accuracy", "simulated time (s)", "comm (MB, analog model)", "LSSR"],
        rows,
        title="Ablation — gradient compression vs selective synchronization",
    )
    save_report("ablation_compression", report)

    bsp = runs["bsp"]
    # Every communication-reduction method is cheaper in simulated time than BSP.
    for label, run in runs.items():
        if label == "bsp":
            continue
        assert run.sim_time_seconds < bsp.sim_time_seconds
    # SelSync keeps BSP-level accuracy while skipping most synchronizations.
    assert runs["selsync(0.3)"].best_metric >= bsp.best_metric - 0.03
    assert runs["selsync(0.3)"].lssr > 0.2
