"""Fig. 8b — one-time data-partitioning overhead: DefDP vs SelDP.

Paper: SelDP's shuffle/rotation costs slightly more preprocessing than DefDP
on the large datasets (ImageNet-1K, WikiText-103) but the difference is a
few seconds of one-time cost.
"""

import pytest

from benchmarks._helpers import full_scale, save_report

from repro.data.partition import (
    DefaultPartitioner,
    SelSyncPartitioner,
    measure_partition_overhead,
)
from repro.harness.reporting import format_table

# Dataset sizes in samples, mirroring the relative sizes of the paper's data.
DATASET_SIZES = {
    "cifar10": 50_000,
    "cifar100": 50_000,
    "wikitext103": 500_000,
    "imagenet1k": 1_280_000,
}
NUM_WORKERS = 16


def _experiment():
    repeats = 3 if full_scale() else 2
    out = {}
    for name, size in DATASET_SIZES.items():
        if not full_scale():
            size = min(size, 400_000)
        out[name] = {
            "defdp": measure_partition_overhead(
                DefaultPartitioner(seed=0), size, NUM_WORKERS, repeats
            ),
            "seldp": measure_partition_overhead(
                SelSyncPartitioner(seed=0), size, NUM_WORKERS, repeats
            ),
            "size": size,
        }
    return out


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_partitioning_overhead(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [name, r["size"], round(r["defdp"] * 1000, 2), round(r["seldp"] * 1000, 2)]
        for name, r in results.items()
    ]
    report = format_table(
        ["dataset", "samples", "DefDP (ms)", "SelDP (ms)"], rows,
        title="Fig. 8b — one-time partitioning overhead (16 workers)",
    )
    save_report("fig8b_partition_overhead", report)

    for name, r in results.items():
        # SelDP builds N full-permutation index orders, so it costs more than
        # DefDP, but remains a sub-second one-time preprocessing cost here.
        assert r["seldp"] >= r["defdp"] * 0.5
        assert r["seldp"] < 30.0
    # Bigger datasets cost more to partition.
    assert results["imagenet1k"]["seldp"] > results["cifar10"]["seldp"]
