"""Compare two BENCH_engine.json files and flag steps/sec regressions.

Used by the CI perf job: the checked-in ``BENCH_engine.json`` (captured
before the job deletes it) is the *baseline*, the freshly measured file is
the *current* run.  Every numeric leaf that lives under a ``steps_per_sec``
key (or whose own key ends in ``steps_per_sec``) is compared; a drop larger
than ``--max-regression`` (default 25%) on any shared key fails the script.

A per-key delta table is printed as GitHub-flavoured markdown on stdout and,
when the ``GITHUB_STEP_SUMMARY`` environment variable is set, appended to
the job summary.  Keys present in only one file are listed but never fail
the comparison (per-PR CI measures only the perf-smoke sections; the
nightly sweep owns ``scale_sweep``).

Absolute steps/sec are hardware sensitive: a shared CI runner measures
lower than the machine that produced the checked-in baseline, which is why
the perf job stays ``continue-on-error`` and the threshold is generous.
Treat a red comparison as a prompt to look at the *relative* speedup
sections (which are dimensionless) before blaming a change.

Usage::

    python benchmarks/compare_bench.py baseline.json current.json \
        [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, Tuple


def _collect_steps_per_sec(node, prefix: str = "", in_sps: bool = False) -> Dict[str, float]:
    """Flatten every numeric leaf governed by a ``steps_per_sec`` key."""
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            owns = in_sps or key == "steps_per_sec" or key.endswith("steps_per_sec")
            out.update(_collect_steps_per_sec(value, path, owns))
    elif isinstance(node, (int, float)) and not isinstance(node, bool) and in_sps:
        out[prefix] = float(node)
    return out


def load_metrics(path: Path) -> Dict[str, float]:
    return _collect_steps_per_sec(json.loads(path.read_text()))


def compare(
    baseline: Dict[str, float], current: Dict[str, float], max_regression: float
) -> Tuple[str, bool]:
    """Render the delta table; returns (markdown, any_regression_beyond_limit)."""
    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    lines = [
        "### Engine perf: baseline vs current (steps/sec)",
        "",
        "| key | baseline | current | delta | status |",
        "| --- | ---: | ---: | ---: | :--- |",
    ]
    failed = False
    for key in shared:
        base, cur = baseline[key], current[key]
        delta = (cur - base) / base if base else float("inf")
        regressed = delta < -max_regression
        failed |= regressed
        status = "REGRESSION" if regressed else ("ok" if delta >= 0 else "ok (within limit)")
        lines.append(f"| {key} | {base:.1f} | {cur:.1f} | {delta:+.1%} | {status} |")
    for key in only_baseline:
        lines.append(f"| {key} | {baseline[key]:.1f} | — | — | not measured in this run |")
    for key in only_current:
        lines.append(f"| {key} | — | {current[key]:.1f} | — | new key |")
    lines.append("")
    lines.append(
        f"Regression limit: {max_regression:.0%} below baseline "
        f"({'FAILED' if failed else 'passed'})."
    )
    return "\n".join(lines), failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="checked-in BENCH_engine.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_engine.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fractional steps/sec drop that fails the job (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare against")
        return 0
    if not args.current.exists():
        print(f"current results missing at {args.current}; benchmark did not write output")
        return 1

    table, failed = compare(
        load_metrics(args.baseline), load_metrics(args.current), args.max_regression
    )
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
