"""Deprecated shim over :mod:`repro.results.compare`.

The comparison logic this script accreted over PRs 3–7 now lives in
:mod:`repro.results.compare`, behind the ``repro bench compare``
subcommand — one uniform ``(kind, baseline, current | --store)`` interface
for all three artifact families instead of this script's flag zoo::

    repro bench compare engine BENCH_engine_base.json BENCH_engine.json
    repro bench compare scenarios base.json current.json
    repro bench compare service base.json current.json
    repro bench compare engine BENCH_engine.json --store bench_history.sqlite3

This file re-exports the public helpers (``compare``, ``load_metrics``,
``load_scenario_metrics``, ``stacked_speedup_table``, ``load_service_metrics``,
``service_throughput_line``) and keeps the old CLI working, with a
:class:`DeprecationWarning` on both paths.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from pathlib import Path

from repro.results.compare import (  # noqa: F401 — re-exported compatibility surface
    _collect_steps_per_sec,
    compare,
    load_metrics,
    load_scenario_metrics,
    load_service_metrics,
    service_throughput_line,
    stacked_speedup_table,
)

warnings.warn(
    "benchmarks/compare_bench.py is deprecated; use `repro bench compare` "
    "(repro.results.compare) instead",
    DeprecationWarning,
    stacklevel=2,
)


def main(argv=None) -> int:
    """Old flag-zoo CLI, forwarded onto :mod:`repro.results.compare`."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="checked-in BENCH_engine.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_engine.json")
    parser.add_argument("--max-regression", type=float, default=0.25)
    parser.add_argument("--scenario-baseline", type=Path, default=None)
    parser.add_argument("--scenario-current", type=Path, default=None)
    parser.add_argument("--service-baseline", type=Path, default=None)
    parser.add_argument("--service-current", type=Path, default=None)
    args = parser.parse_args(argv)

    warnings.warn(
        "`python benchmarks/compare_bench.py ...` is deprecated; use "
        "`repro bench compare <kind> <baseline> <current>` instead",
        DeprecationWarning,
        stacklevel=2,
    )

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare against")
        return 0
    if not args.current.exists():
        print(f"current results missing at {args.current}; benchmark did not write output")
        return 1

    table, failed = compare(
        load_metrics(args.baseline), load_metrics(args.current), args.max_regression
    )
    sections = [table]
    if args.scenario_current is not None:
        if not args.scenario_current.exists():
            print(
                f"current scenario results missing at {args.scenario_current}; "
                "benchmark did not write output"
            )
            return 1
        if args.scenario_baseline is not None and args.scenario_baseline.exists():
            scenario_table, scenario_failed = compare(
                load_scenario_metrics(args.scenario_baseline),
                load_scenario_metrics(args.scenario_current),
                args.max_regression,
                title="### Scenario sweeps: baseline vs current (steps/sec)",
            )
            sections.append(scenario_table)
            failed |= scenario_failed
        else:
            print(
                f"no scenario baseline at {args.scenario_baseline}; "
                "skipping the scenario delta table"
            )
        speedups = stacked_speedup_table(args.scenario_current)
        if speedups:
            sections.append(speedups)

    if args.service_current is not None:
        if not args.service_current.exists():
            print(
                f"current service results missing at {args.service_current}; "
                "benchmark did not write output"
            )
            return 1
        if args.service_baseline is not None and args.service_baseline.exists():
            service_table, service_failed = compare(
                load_service_metrics(args.service_baseline),
                load_service_metrics(args.service_current),
                args.max_regression,
                title="### Service load: baseline vs current (latency ms, lower is better)",
                lower_is_better=True,
            )
            sections.append(service_table)
            failed |= service_failed
        else:
            print(
                f"no service baseline at {args.service_baseline}; "
                "skipping the service delta table"
            )
        throughput = service_throughput_line(args.service_current)
        if throughput:
            sections.append(throughput)

    output = "\n\n".join(sections)
    print(output)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(output + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
