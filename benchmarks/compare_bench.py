"""Compare two BENCH_engine.json files and flag steps/sec regressions.

Used by the CI perf job: the checked-in ``BENCH_engine.json`` (captured
before the job deletes it) is the *baseline*, the freshly measured file is
the *current* run.  Every numeric leaf that lives under a ``steps_per_sec``
key (or whose own key ends in ``steps_per_sec``) is compared; a drop larger
than ``--max-regression`` (default 25%) on any shared key fails the script.

``--scenario-baseline`` / ``--scenario-current`` optionally add the same
comparison for a pair of ``BENCH_scenarios.json`` files: the
``stacked_sweep`` section's sequential / stacked steps-per-sec rows, plus a
synthesized ``<scenario>.sweep_steps_per_sec`` row for every scenario report
that recorded its sweep wall-clock (total trainer steps across the grid over
``meta.sweep_wall_seconds``).  The current file's stacked-vs-sequential
speedups are also rendered as their own (dimensionless, hence
hardware-insensitive) markdown table.

A per-key delta table is printed as GitHub-flavoured markdown on stdout and,
when the ``GITHUB_STEP_SUMMARY`` environment variable is set, appended to
the job summary.  Keys present in only one file are listed but never fail
the comparison (per-PR CI measures only the perf-smoke sections; the
nightly sweep owns ``scale_sweep``).

Absolute steps/sec are hardware sensitive: a shared CI runner measures
lower than the machine that produced the checked-in baseline, which is why
the perf job stays ``continue-on-error`` and the threshold is generous.
Treat a red comparison as a prompt to look at the *relative* speedup
sections (which are dimensionless) before blaming a change.

``--service-baseline`` / ``--service-current`` add the comparison for a
pair of ``BENCH_service.json`` files (the experiment-service load benchmark,
``benchmarks/service_load.py``): submit/e2e latency p50/p99 compared
*lower-is-better*, so growth beyond ``--max-regression`` (>25% p99 by
default) fails exactly like a steps/sec drop on the engine side.  The
current run's sustained jobs/sec is reported as an informational line.

Usage::

    python benchmarks/compare_bench.py baseline.json current.json \
        [--scenario-baseline BENCH_scenarios_base.json] \
        [--scenario-current BENCH_scenarios.json] \
        [--service-baseline BENCH_service_base.json] \
        [--service-current BENCH_service.json] \
        [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, Tuple


def _collect_steps_per_sec(node, prefix: str = "", in_sps: bool = False) -> Dict[str, float]:
    """Flatten every numeric leaf governed by a ``steps_per_sec`` key."""
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            owns = in_sps or key == "steps_per_sec" or key.endswith("steps_per_sec")
            out.update(_collect_steps_per_sec(value, path, owns))
    elif isinstance(node, (int, float)) and not isinstance(node, bool) and in_sps:
        out[prefix] = float(node)
    return out


def load_metrics(path: Path) -> Dict[str, float]:
    return _collect_steps_per_sec(json.loads(path.read_text()))


def _scenario_sweep_rate(summary: dict) -> float | None:
    """Total trainer steps across the grid per second of sweep wall-clock."""
    meta = summary.get("meta") or {}
    wall = meta.get("sweep_wall_seconds")
    records = summary.get("records") or []
    iterations = meta.get("iterations")
    if not wall or not records or not iterations:
        return None
    return iterations * len(records) / wall


def load_scenario_metrics(path: Path) -> Dict[str, float]:
    """Flatten a BENCH_scenarios.json file into comparable steps/sec rows.

    Includes every ``steps_per_sec`` leaf (the ``stacked_sweep`` section's
    sequential / stacked rates) plus one synthesized
    ``<scenario>.sweep_steps_per_sec`` row per scenario report.
    """
    report = json.loads(path.read_text())
    metrics = _collect_steps_per_sec(report)
    for name, summary in report.items():
        if not isinstance(summary, dict):
            continue
        rate = _scenario_sweep_rate(summary)
        if rate is not None:
            metrics[f"{name}.sweep_steps_per_sec"] = rate
    return metrics


def stacked_speedup_table(path: Path) -> str:
    """Markdown table of the current stacked-vs-sequential speedups.

    Speedups are dimensionless, so unlike raw steps/sec they transfer
    between hosts; an empty string is returned when the file has no
    ``stacked_sweep`` section.
    """
    report = json.loads(path.read_text())
    section = report.get("stacked_sweep") or {}
    scenarios = section.get("scenarios") or {}
    if not scenarios:
        return ""
    lines = [
        "### Stacked sweep executor: fused vs sequential",
        "",
        "| scenario | sequential (s) | stacked (s) | speedup | exact parity |",
        "| --- | ---: | ---: | ---: | :--- |",
    ]
    for name in sorted(scenarios):
        row = scenarios[name]
        lines.append(
            f"| {name} | {row['sequential_seconds']:.2f} | "
            f"{row['stacked_seconds']:.2f} | {row['speedup']:.2f}x | "
            f"{'yes' if row.get('exact_parity') else 'NO'} |"
        )
    cores = (section.get("config") or {}).get("cpu_count")
    lines.append("")
    lines.append(f"Measured on a host with {cores} cores.")
    return "\n".join(lines)


def load_service_metrics(path: Path) -> Dict[str, float]:
    """Flatten a BENCH_service.json file into comparable latency rows.

    Only the latency percentiles gate (lower is better); ``jobs_per_sec``
    is tracked in the same table but as a higher-is-better row would invert
    the comparison, so it is reported via :func:`service_throughput_line`
    instead.
    """
    report = json.loads(path.read_text())
    load = report.get("load") or {}
    metrics: Dict[str, float] = {}
    for section in ("submit_latency_ms", "e2e_latency_ms"):
        for quantile in ("p50", "p99"):
            value = (load.get(section) or {}).get(quantile)
            if value is not None:
                metrics[f"{section}.{quantile}"] = float(value)
    return metrics


def service_throughput_line(path: Path) -> str:
    """One informational line for the current run's sustained throughput."""
    load = (json.loads(path.read_text()) or {}).get("load") or {}
    if not load:
        return ""
    return (
        f"Current sustained throughput: {load.get('jobs_per_sec', 0)} jobs/s "
        f"({load.get('completed_jobs', 0)}/{load.get('total_jobs', 0)} jobs, "
        f"{load.get('failures', 0)} failures)."
    )


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    max_regression: float,
    title: str = "### Engine perf: baseline vs current (steps/sec)",
    lower_is_better: bool = False,
) -> Tuple[str, bool]:
    """Render the delta table; returns (markdown, any_regression_beyond_limit).

    ``lower_is_better=True`` flips the regression direction for latency-style
    metrics: growth beyond ``max_regression`` fails instead of shrinkage.
    """
    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    lines = [
        title,
        "",
        "| key | baseline | current | delta | status |",
        "| --- | ---: | ---: | ---: | :--- |",
    ]
    failed = False
    for key in shared:
        base, cur = baseline[key], current[key]
        delta = (cur - base) / base if base else float("inf")
        if lower_is_better:
            regressed = delta > max_regression
            improved = delta <= 0
        else:
            regressed = delta < -max_regression
            improved = delta >= 0
        failed |= regressed
        status = "REGRESSION" if regressed else ("ok" if improved else "ok (within limit)")
        lines.append(f"| {key} | {base:.1f} | {cur:.1f} | {delta:+.1%} | {status} |")
    for key in only_baseline:
        lines.append(f"| {key} | {baseline[key]:.1f} | — | — | not measured in this run |")
    for key in only_current:
        lines.append(f"| {key} | — | {current[key]:.1f} | — | new key |")
    lines.append("")
    direction = "above" if lower_is_better else "below"
    lines.append(
        f"Regression limit: {max_regression:.0%} {direction} baseline "
        f"({'FAILED' if failed else 'passed'})."
    )
    return "\n".join(lines), failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="checked-in BENCH_engine.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_engine.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fractional steps/sec drop that fails the job (default 0.25)",
    )
    parser.add_argument(
        "--scenario-baseline",
        type=Path,
        default=None,
        help="checked-in BENCH_scenarios.json to compare against",
    )
    parser.add_argument(
        "--scenario-current",
        type=Path,
        default=None,
        help="freshly measured BENCH_scenarios.json",
    )
    parser.add_argument(
        "--service-baseline",
        type=Path,
        default=None,
        help="checked-in BENCH_service.json to compare against",
    )
    parser.add_argument(
        "--service-current",
        type=Path,
        default=None,
        help="freshly measured BENCH_service.json",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare against")
        return 0
    if not args.current.exists():
        print(f"current results missing at {args.current}; benchmark did not write output")
        return 1

    table, failed = compare(
        load_metrics(args.baseline), load_metrics(args.current), args.max_regression
    )
    sections = [table]
    if args.scenario_current is not None:
        if not args.scenario_current.exists():
            print(
                f"current scenario results missing at {args.scenario_current}; "
                "benchmark did not write output"
            )
            return 1
        if args.scenario_baseline is not None and args.scenario_baseline.exists():
            scenario_table, scenario_failed = compare(
                load_scenario_metrics(args.scenario_baseline),
                load_scenario_metrics(args.scenario_current),
                args.max_regression,
                title="### Scenario sweeps: baseline vs current (steps/sec)",
            )
            sections.append(scenario_table)
            failed |= scenario_failed
        else:
            print(
                f"no scenario baseline at {args.scenario_baseline}; "
                "skipping the scenario delta table"
            )
        speedups = stacked_speedup_table(args.scenario_current)
        if speedups:
            sections.append(speedups)

    if args.service_current is not None:
        if not args.service_current.exists():
            print(
                f"current service results missing at {args.service_current}; "
                "benchmark did not write output"
            )
            return 1
        if args.service_baseline is not None and args.service_baseline.exists():
            service_table, service_failed = compare(
                load_service_metrics(args.service_baseline),
                load_service_metrics(args.service_current),
                args.max_regression,
                title="### Service load: baseline vs current (latency ms, lower is better)",
                lower_is_better=True,
            )
            sections.append(service_table)
            failed |= service_failed
        else:
            print(
                f"no service baseline at {args.service_baseline}; "
                "skipping the service delta table"
            )
        throughput = service_throughput_line(args.service_current)
        if throughput:
            sections.append(throughput)

    output = "\n\n".join(sections)
    print(output)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(output + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
