"""Scenario: non-IID training with randomized data injection (§III-E, Fig. 12).

Splits the CIFAR-10-like dataset so every worker only holds two class labels,
then compares FedAvg against SelSync with three (α, β, δ) data-injection
configurations.  The per-worker batch size is reduced to b′ per Eqn. (3) so
the effective batch after injection matches the original setting.

Usage:
    python examples/noniid_data_injection.py [--workers 5] [--iterations 150]
"""

from __future__ import annotations

import argparse

from repro.algorithms.fedavg import FedAvgTrainer
from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.data.datasets import build_dataset
from repro.data.injection import adjusted_batch_size
from repro.data.noniid import LabelSkewPartitioner, label_distribution
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table

INJECTION_CONFIGS = [(0.5, 0.5, 0.05), (0.5, 0.5, 0.3), (0.75, 0.75, 0.3)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=5)
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--labels-per-worker", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    preset = build_workload("resnet101")
    bundle = build_dataset(preset.dataset_name, seed=args.seed, **preset.dataset_kwargs)
    partitioner = LabelSkewPartitioner(
        bundle.train.targets, labels_per_worker=args.labels_per_worker, seed=args.seed
    )

    # Show how skewed the per-worker label distributions actually are.
    layout = partitioner.partition(len(bundle.train), args.workers)
    print("per-worker label histograms (non-IID split):")
    for worker, idx in enumerate(layout.worker_indices):
        dist = label_distribution(bundle.train.targets, idx, bundle.train.num_classes)
        top = ", ".join(f"{c}:{p:.2f}" for c, p in enumerate(dist) if p > 0.01)
        print(f"  worker{worker}: {top}")

    eval_every = max(args.iterations // 6, 1)
    results = {}

    cluster = build_cluster(preset, num_workers=args.workers, seed=args.seed,
                            partitioner=partitioner, bundle=bundle)
    results["fedavg(C=1,E=0.1)"] = FedAvgTrainer(
        cluster, participation=1.0, sync_factor=0.1,
        lr_schedule=preset.lr_schedule_factory(args.iterations), eval_every=eval_every,
    ).run(args.iterations)

    for alpha, beta, delta in INJECTION_CONFIGS:
        b_prime = adjusted_batch_size(preset.batch_size, alpha, beta, args.workers)
        cluster = build_cluster(preset, num_workers=args.workers, seed=args.seed,
                                partitioner=partitioner, bundle=bundle, batch_size=b_prime)
        trainer = SelSyncTrainer(
            cluster,
            SelSyncConfig(delta=delta, injection_alpha=alpha, injection_beta=beta),
            lr_schedule=preset.lr_schedule_factory(args.iterations),
            eval_every=eval_every,
        )
        label = f"selsync(α={alpha}, β={beta}, δ={delta}), b'={b_prime}"
        results[label] = trainer.run(args.iterations)

    rows = [
        [label, round(r.best_metric, 4), round(r.lssr, 3), round(r.sim_time_seconds, 1)]
        for label, r in results.items()
    ]
    print()
    print(format_table(
        ["method", "best test accuracy", "LSSR", "simulated time (s)"], rows,
        title=f"Non-IID training ({args.labels_per_worker} labels/worker, {args.workers} workers)",
    ))


if __name__ == "__main__":
    main()
