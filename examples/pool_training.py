"""Scenario: multiprocessing replica pool + batched per-layer diagnostics.

Trains the same ConvNet cluster twice — single-process and sharded over a
shared-memory replica pool — checks the trajectories are bit-identical
(float64), reports the wall-clock contrast, and prints worker-averaged
per-layer gradient norms computed straight from worker-matrix slices
(:mod:`repro.stats.layer_stats`, no per-worker unflatten).

Usage:
    python examples/pool_training.py [--workers 16] [--pool-workers 4] \
        [--iterations 30] [--start-method fork]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.algorithms.bsp import BSPTrainer
from repro.cluster.cluster import ClusterConfig, SimulatedCluster
from repro.data.datasets import make_image_splits
from repro.data.partition import SelSyncPartitioner
from repro.harness.reporting import format_table
from repro.nn.models import ConvNet
from repro.optim.sgd import SGD
from repro.stats.layer_stats import mean_layer_norms


def build(num_workers: int, pool_workers: int, start_method, seed: int) -> SimulatedCluster:
    train, test = make_image_splits(2048, 256, 4, in_channels=1, image_size=8, seed=seed)
    config = ClusterConfig(
        num_workers=num_workers,
        batch_size=8,
        seed=seed,
        pool_workers=pool_workers,
        pool_start_method=start_method,
    )
    return SimulatedCluster(
        model_factory=lambda rng: ConvNet(
            in_channels=1, num_classes=4, image_size=8, channels=(4, 8), rng=rng
        ),
        optimizer_factory=lambda m: SGD(m, lr=0.05, momentum=0.9),
        train_dataset=train,
        test_dataset=test,
        config=config,
        partitioner=SelSyncPartitioner(seed=seed),
    )


def train(cluster: SimulatedCluster, iterations: int):
    trainer = BSPTrainer(cluster, eval_every=10_000)
    start = time.perf_counter()
    for _ in range(iterations):
        trainer.train_step()
        trainer.global_step += 1
        cluster.global_step = trainer.global_step
    elapsed = time.perf_counter() - start
    return elapsed, cluster.matrix.params.copy()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--pool-workers", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--start-method", default=None,
                        choices=["fork", "spawn", "forkserver"])
    args = parser.parse_args()

    with build(args.workers, 0, None, args.seed) as cluster:
        single_s, single_params = train(cluster, args.iterations)

    with build(args.workers, args.pool_workers, args.start_method, args.seed) as cluster:
        pooled_s, pooled_params = train(cluster, args.iterations)
        grad_norms = mean_layer_norms(cluster.matrix.grads, cluster.matrix.spec)

    identical = bool(np.array_equal(single_params, pooled_params))
    rows = [
        ["single process", f"{args.iterations / single_s:.1f}", "-"],
        [
            f"pool ({args.pool_workers} procs)",
            f"{args.iterations / pooled_s:.1f}",
            f"{single_s / pooled_s:.2f}x",
        ],
    ]
    print(format_table(
        ["mode", "steps/sec", "speedup"],
        rows,
        title=f"BSP on ConvNet, N={args.workers} replicas",
    ))
    print(f"\ntrajectories bit-identical: {identical}")

    print("\nworker-averaged per-layer gradient norms (from matrix slices):")
    layer_rows = [[name, f"{norm:.4e}"] for name, norm in grad_norms.items()]
    print(format_table(["layer", "mean ||grad||"], layer_rows))


if __name__ == "__main__":
    main()
