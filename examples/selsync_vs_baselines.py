"""Scenario: reproduce a miniature Table I — SelSync vs BSP, FedAvg and SSP.

Runs the full method grid on one workload and prints the Table-I columns
(iterations, LSSR, accuracy/perplexity, convergence difference vs BSP,
whether BSP is outperformed, overall simulated speedup).

Usage:
    python examples/selsync_vs_baselines.py [--workload resnet101] [--iterations 160]
"""

from __future__ import annotations

import argparse

from repro.harness.experiment import build_cluster, build_workload, make_trainer
from repro.harness.reporting import format_table, results_to_rows, table1_headers
from repro.metrics.convergence import ConvergenceDetector

METHODS = {
    "bsp": ("bsp", {}),
    "fedavg(C=1,E=0.25)": ("fedavg", {"participation": 1.0, "sync_factor": 0.25}),
    "fedavg(C=0.5,E=0.25)": ("fedavg", {"participation": 0.5, "sync_factor": 0.25}),
    "ssp(s=100)": ("ssp", {"staleness": 100}),
    "selsync(δ=0.3)": ("selsync", {"delta": 0.3}),
    "selsync(δ=0.5)": ("selsync", {"delta": 0.5}),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="resnet101",
                        choices=["resnet101", "vgg11", "alexnet", "transformer"])
    parser.add_argument("--iterations", type=int, default=160)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    results = {}
    for label, (algorithm, kwargs) in METHODS.items():
        print(f"running {label} ...")
        preset = build_workload(args.workload)
        cluster = build_cluster(preset, num_workers=args.workers, seed=args.seed)
        trainer = make_trainer(
            algorithm, cluster, preset, total_iterations=args.iterations,
            eval_every=max(args.iterations // 8, 1), **kwargs,
        )
        detector = ConvergenceDetector(
            higher_is_better=preset.task != "language_modeling", patience=4, min_delta=1e-3
        )
        results[label] = trainer.run(args.iterations, convergence=detector)

    rows = results_to_rows(results, baseline_key="bsp")
    print()
    print(format_table(table1_headers(), rows,
                       title=f"Table I (miniature) — {args.workload}, {args.workers} workers"))


if __name__ == "__main__":
    main()
