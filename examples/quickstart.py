"""Quickstart: train the ResNet-analog workload with SelSync on a simulated cluster.

Runs BSP and SelSync (δ = 0.3) side by side on the CIFAR-10-like synthetic
dataset with 4 simulated workers and prints accuracy, LSSR (the fraction of
local steps), and the simulated wall-clock speedup.

Usage:
    python examples/quickstart.py [--iterations 150] [--workers 4] [--delta 0.3]
"""

from __future__ import annotations

import argparse

from repro.harness import run_experiment
from repro.harness.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--delta", type=float, default=0.3)
    parser.add_argument("--workload", default="resnet101",
                        choices=["resnet101", "vgg11", "alexnet", "transformer"])
    args = parser.parse_args()

    print(f"Training workload {args.workload!r} on {args.workers} simulated workers...")

    bsp = run_experiment(
        args.workload, "bsp", num_workers=args.workers,
        iterations=args.iterations, eval_every=max(args.iterations // 6, 1),
    )
    selsync = run_experiment(
        args.workload, "selsync", num_workers=args.workers,
        iterations=args.iterations, eval_every=max(args.iterations // 6, 1),
        delta=args.delta,
    )

    rows = []
    for out in (bsp, selsync):
        r = out.result
        rows.append([
            out.algorithm,
            r.iterations,
            round(r.lssr, 3),
            round(r.best_metric, 4),
            round(r.sim_time_seconds, 1),
        ])
    speedup = selsync.result.speedup_over(bsp.result)
    print(format_table(
        ["method", "iterations", "LSSR", f"best {bsp.result.metric_name}", "simulated time (s)"],
        rows,
        title=f"SelSync quickstart — {args.workload}",
    ))
    print(f"\nSelSync simulated speedup over BSP: {speedup:.2f}x "
          f"(communication skipped on {selsync.result.lssr:.0%} of steps)")


if __name__ == "__main__":
    main()
