"""Quickstart: train the ResNet-analog workload with SelSync on a simulated cluster.

Runs BSP and SelSync side by side on the CIFAR-10-like synthetic dataset
with 4 simulated workers and prints accuracy, LSSR (the fraction of local
steps), and the simulated wall-clock speedup.  The default run resolves the
``quickstart`` entry of the declarative scenario registry; a custom δ or
workload builds the same comparison scenario ad hoc (scenarios are plain
frozen dataclasses — no registration needed to run one).

Usage:
    python examples/quickstart.py [--iterations 150] [--workers 4] [--delta 0.3]
"""

from __future__ import annotations

import argparse

from repro.harness.experiment import WORKLOAD_PRESETS
from repro.harness.reporting import format_table
from repro.scenarios import ComparisonScenario, get_scenario, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--delta", type=float, default=0.3)
    parser.add_argument("--workload", default="resnet101", choices=sorted(WORKLOAD_PRESETS))
    args = parser.parse_args()

    registered = get_scenario("quickstart")
    if args.delta == 0.3 and args.workload in registered.workloads:
        scenario = registered
    else:
        scenario = ComparisonScenario(
            name="quickstart-custom",
            title=f"SelSync quickstart — BSP vs SelSync(δ={args.delta})",
            methods={"bsp": ("bsp", {}), "selsync": ("selsync", {"delta": args.delta})},
            workloads=(args.workload,),
            eval_every=25,
            use_convergence=False,
        )

    print(f"Training workload {args.workload!r} on {args.workers} simulated workers...")
    report = run_scenario(
        scenario, iterations=args.iterations, num_workers=args.workers
    )

    bsp = report.results[f"{args.workload}/bsp"]
    selsync = report.results[f"{args.workload}/selsync"]
    rows = [
        [r.algorithm, r.iterations, round(r.lssr, 3), round(r.best_metric, 4),
         round(r.sim_time_seconds, 1)]
        for r in (bsp, selsync)
    ]
    print(format_table(
        ["method", "iterations", "LSSR", f"best {bsp.metric_name}", "simulated time (s)"],
        rows,
        title=f"SelSync quickstart — {args.workload}",
    ))
    speedup = selsync.speedup_over(bsp)
    print(f"\nSelSync simulated speedup over BSP: {speedup:.2f}x "
          f"(communication skipped on {selsync.lssr:.0%} of steps)")


if __name__ == "__main__":
    main()
