"""Scenario: sweep the δ threshold between BSP and pure local SGD (Fig. 6).

For a grid of δ values the script reports the fraction of local steps
(LSSR), the resulting communication-reduction factor, the final accuracy and
the simulated wall-clock — making the parallel-vs-statistical-efficiency
trade-off of §III-B concrete.

Usage:
    python examples/delta_sweep.py [--iterations 120] [--workers 4]
"""

from __future__ import annotations

import argparse

from repro.core.config import SelSyncConfig
from repro.core.selsync import SelSyncTrainer
from repro.harness.experiment import build_cluster, build_workload
from repro.harness.reporting import format_table
from repro.metrics.lssr import communication_reduction

DELTAS = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 1e9]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="resnet101",
                        choices=["resnet101", "vgg11", "alexnet", "transformer"])
    parser.add_argument("--iterations", type=int, default=120)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    for delta in DELTAS:
        preset = build_workload(args.workload)
        cluster = build_cluster(preset, num_workers=args.workers, seed=args.seed)
        trainer = SelSyncTrainer(
            cluster, SelSyncConfig(delta=delta),
            lr_schedule=preset.lr_schedule_factory(args.iterations),
            eval_every=max(args.iterations // 4, 1),
        )
        result = trainer.run(args.iterations)
        reduction = communication_reduction(result.lssr)
        rows.append([
            "∞ (local only)" if delta == 1e9 else delta,
            round(result.lssr, 3),
            "∞" if reduction == float("inf") else f"{reduction:.1f}x",
            round(result.best_metric, 4),
            round(result.sim_time_seconds, 1),
        ])
        print(f"δ={delta}: LSSR={result.lssr:.3f}, metric={result.best_metric:.4f}")

    print()
    print(format_table(
        ["δ", "LSSR", "comm. reduction", f"best metric", "simulated time (s)"],
        rows,
        title=f"δ sweep — {args.workload}, {args.workers} workers",
    ))


if __name__ == "__main__":
    main()
