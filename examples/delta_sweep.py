"""Scenario: sweep the δ threshold between BSP and pure local SGD (Fig. 6).

For a grid of δ values the script reports the fraction of local steps
(LSSR), the resulting communication-reduction factor, the final accuracy and
the simulated wall-clock — making the parallel-vs-statistical-efficiency
trade-off of §III-B concrete.

The grids live in the declarative scenario registry (one
``delta-sweep-<workload>`` entry per workload preset, see
``repro.scenarios.catalog``); this script only resolves a name and rescales
the run.  ``--scenario`` runs any other registered sweep by name, e.g. the
paper-scale ``deep-mlp-delta-n256``.

Usage:
    python examples/delta_sweep.py [--workload resnet101] [--iterations 120]
    python examples/delta_sweep.py --scenario deep-mlp-delta-n64
"""

from __future__ import annotations

import argparse

from repro.harness.experiment import WORKLOAD_PRESETS
from repro.harness.reporting import format_table
from repro.metrics.lssr import communication_reduction
from repro.scenarios import run_scenario, scenario_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="resnet101", choices=sorted(WORKLOAD_PRESETS))
    parser.add_argument(
        "--scenario", default=None, choices=scenario_names(tag="delta-sweep"),
        help="run this registered δ-sweep instead of delta-sweep-<workload>",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="override the scenario's iteration budget (default: keep it)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args()

    name = args.scenario or f"delta-sweep-{args.workload}"
    report = run_scenario(
        name, iterations=args.iterations, num_workers=args.workers, seed=args.seed
    )

    rows = []
    for record in report.records:
        delta = record.params["delta"]
        lssr = record.metrics["lssr"]
        reduction = communication_reduction(lssr)
        rows.append([
            "∞ (local only)" if delta >= 1e9 else delta,
            round(lssr, 3),
            "∞" if reduction == float("inf") else f"{reduction:.1f}x",
            round(record.metrics["best_metric"], 4),
            round(record.metrics["sim_time_seconds"], 1),
        ])
        print(f"δ={delta}: LSSR={lssr:.3f}, metric={record.metrics['best_metric']:.4f}")

    print()
    print(format_table(
        ["δ", "LSSR", "comm. reduction", "best metric", "simulated time (s)"],
        rows,
        title=report.title,
    ))
    if report.endpoints:
        verdicts = ", ".join(
            f"{anchor}={info['matches_sweep_endpoint']}"
            for anchor, info in report.endpoints.items()
        )
        print(f"\nexact endpoint parity vs existing trainers: {verdicts}")


if __name__ == "__main__":
    main()
